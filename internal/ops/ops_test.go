package ops

import (
	"testing"

	"repro/internal/calib"
)

func TestFigure4Campaign146Days(t *testing.T) {
	sim, err := New(Config{Days: 146, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) < 140 {
		t.Fatalf("series has %d points, want ~146 daily samples", len(rep.Series))
	}
	st := rep.Stats()
	// Figure 4's claim: consistent fidelities over the whole campaign.
	if st.MeanF1Q < 0.997 {
		t.Errorf("mean F1Q = %.4f, want >= 0.997 (Fig 4 band)", st.MeanF1Q)
	}
	if st.MinF1Q < 0.985 {
		t.Errorf("min F1Q = %.4f dipped too low", st.MinF1Q)
	}
	if st.MeanFCZ < 0.98 {
		t.Errorf("mean FCZ = %.4f, want >= 0.98", st.MeanFCZ)
	}
	if st.MeanFReadout < 0.96 {
		t.Errorf("mean Freadout = %.4f, want >= 0.96", st.MeanFReadout)
	}
	// Unattended operation: no outages injected, so the whole campaign runs
	// without human intervention — the paper's ">100 days" claim.
	if rep.UnattendedDays < 100 {
		t.Errorf("unattended = %.0f days, want >= 100", rep.UnattendedDays)
	}
	// Daily quick + weekly full cadence.
	if rep.QuickCals < 100 {
		t.Errorf("quick calibrations = %d, want ~daily", rep.QuickCals)
	}
	if rep.FullCals < 15 || rep.FullCals > 30 {
		t.Errorf("full calibrations = %d, want ~weekly (20±)", rep.FullCals)
	}
	if rep.WarmupsAbove1K != 0 {
		t.Errorf("warmups = %d, want 0 without outages", rep.WarmupsAbove1K)
	}
	if rep.AvailableFraction < 0.9 {
		t.Errorf("availability = %.3f, want >= 0.9", rep.AvailableFraction)
	}
}

func TestDriftWithoutCalibrationDegrades(t *testing.T) {
	// Ablation: a policy that never calibrates lets fidelity sag toward the
	// degraded asymptote — the reason lesson 2 exists.
	never := &calib.Policy{QuickEveryHours: 1e12, FullEveryHours: 1e12}
	sim, err := New(Config{Days: 60, Seed: 7, Policy: never})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.QuickCals != 0 || rep.FullCals != 0 {
		t.Fatalf("never-policy still calibrated: %d quick, %d full", rep.QuickCals, rep.FullCals)
	}
	st := rep.Stats()
	if st.MinF1Q > 0.995 {
		t.Errorf("uncalibrated min F1Q = %.4f, should have degraded below 0.995", st.MinF1Q)
	}
	// Compare against the calibrated baseline on the same seed.
	simCal, _ := New(Config{Days: 60, Seed: 7})
	repCal, err := simCal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if repCal.Stats().MeanF1Q <= st.MeanF1Q {
		t.Errorf("calibrated mean %.4f should beat uncalibrated %.4f",
			repCal.Stats().MeanF1Q, st.MeanF1Q)
	}
}

func TestCoolingOutageWithoutRedundancyCausesWarmup(t *testing.T) {
	sim, err := New(Config{
		Days: 10, Seed: 3,
		Outages: []OutageEvent{{Kind: OutageCoolingWater, StartDay: 3, DurationHours: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmupsAbove1K == 0 {
		t.Error("6 h cooling-water outage should warm the QPU past 1 K (§3.5)")
	}
	if rep.DowntimeHours < 6 {
		t.Errorf("downtime = %.1f h, want >= outage duration", rep.DowntimeHours)
	}
	if rep.CooldownHours == 0 {
		t.Error("recovery should include a cooldown phase")
	}
	// A full calibration is forced after the warm-up (§3.5).
	if rep.FullCals == 0 {
		t.Error("post-outage full calibration missing")
	}
	if rep.UnattendedDays >= 10 {
		t.Error("outage repair should break the unattended streak")
	}
}

func TestRedundantInfrastructureRidesThroughOutage(t *testing.T) {
	// Lesson 3: with redundant feeds, the same fault causes no warmup.
	outages := []OutageEvent{{Kind: OutageCoolingWater, StartDay: 3, DurationHours: 6}}
	simR, err := New(Config{Days: 10, Seed: 3, Redundant: true, Outages: outages})
	if err != nil {
		t.Fatal(err)
	}
	repR, err := simR.Run()
	if err != nil {
		t.Fatal(err)
	}
	if repR.WarmupsAbove1K != 0 {
		t.Errorf("redundant loop warmed up %d times, want 0", repR.WarmupsAbove1K)
	}
	simN, _ := New(Config{Days: 10, Seed: 3, Outages: outages})
	repN, err := simN.Run()
	if err != nil {
		t.Fatal(err)
	}
	if repR.AvailableFraction <= repN.AvailableFraction {
		t.Errorf("redundant availability %.4f should beat non-redundant %.4f",
			repR.AvailableFraction, repN.AvailableFraction)
	}
}

func TestPowerOutageRedundantUPSHolds(t *testing.T) {
	// A 2-hour grid outage: UPS (4 h) + second feed ride through.
	outages := []OutageEvent{{Kind: OutagePower, StartDay: 2, DurationHours: 2}}
	simR, err := New(Config{Days: 5, Seed: 9, Redundant: true, Outages: outages})
	if err != nil {
		t.Fatal(err)
	}
	repR, err := simR.Run()
	if err != nil {
		t.Fatal(err)
	}
	if repR.WarmupsAbove1K != 0 {
		t.Error("UPS-backed system should not warm up during a 2 h grid outage")
	}
	simN, _ := New(Config{Days: 5, Seed: 9, Outages: outages})
	repN, _ := simN.Run()
	if repN.WarmupsAbove1K == 0 {
		t.Error("single-feed system should lose cooling in a grid outage")
	}
}

func TestTelemetryPopulated(t *testing.T) {
	sim, err := New(Config{Days: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	store := sim.Store()
	for _, sensor := range []string{"fidelity_1q", "fidelity_cz", "mxc_temp_k", "power_kw", "water_temp_c"} {
		if store.Count(sensor) < 4 {
			t.Errorf("sensor %s has %d samples, want daily", sensor, store.Count(sensor))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Days: 0}); err == nil {
		t.Error("expected error for 0 days")
	}
}

func TestReportStatsEmpty(t *testing.T) {
	r := &Report{}
	st := r.Stats()
	if st.MeanF1Q != 0 {
		t.Error("empty report stats should be zero")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() SeriesStats {
		sim, err := New(Config{Days: 20, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("campaign not deterministic: %+v vs %+v", a, b)
	}
}
