// Package qdmi reproduces the Quantum Device Management Interface (§2.6,
// Fig. 2/3): a narrow query interface through which software tools obtain
// backend-specific metrics — topology, native operations, gate fidelities,
// noise characteristics, resource constraints — at runtime, enabling
// just-in-time adaptation of compilation and scheduling per device.
package qdmi

import (
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/telemetry"
	"repro/internal/transpile"
)

// Properties is the static device description.
type Properties struct {
	Name        string        `json:"name"`
	NumQubits   int           `json:"num_qubits"`
	NativeOps   []string      `json:"native_ops"`
	CouplingMap map[int][]int `json:"coupling_map"`
	DigitalTwin bool          `json:"digital_twin"`
}

// Interface is what compilers and schedulers program against. The paper
// describes it as "a lightweight header-only C interface"; the Go analogue
// is a small method set.
type Interface interface {
	// Properties returns the static device description.
	Properties() Properties
	// Target returns a transpilation target carrying live fidelities.
	Target() *transpile.Target
	// Calibration returns a snapshot of the current calibration record.
	Calibration() *device.Calibration
}

// Device implements Interface over a QPU, optionally publishing calibration
// metrics into a telemetry store (the DCDB/QDMI integration of Fig. 3).
type Device struct {
	mu    sync.Mutex
	qpu   *device.QPU
	store *telemetry.Store
}

// NewDevice wraps a QPU. store may be nil (no telemetry publication).
func NewDevice(qpu *device.QPU, store *telemetry.Store) *Device {
	return &Device{qpu: qpu, store: store}
}

// Properties implements Interface.
func (d *Device) Properties() Properties {
	return Properties{
		Name:        d.qpu.Name(),
		NumQubits:   d.qpu.NumQubits(),
		NativeOps:   []string{"prx", "rz", "cz", "measure"},
		CouplingMap: d.qpu.Topology().CouplingMap(),
		DigitalTwin: d.qpu.IsTwin(),
	}
}

// Target implements Interface: it snapshots the live calibration so that the
// transpiler's fidelity-aware placement sees the device as it is now — the
// mechanism behind "just-in-time quantum circuit transpilation can reduce
// noise" (§2.6).
func (d *Device) Target() *transpile.Target {
	t, _ := d.TargetWithEpoch()
	return t
}

// TargetWithEpoch returns the transpilation target together with the
// calibration epoch it was built from, as one consistent snapshot — the
// pair the QRM's transpile cache keys on. Reading them separately would
// allow a drift advance between the reads to cache a target under the
// wrong epoch.
func (d *Device) TargetWithEpoch() (*transpile.Target, uint64) {
	calib, epoch := d.qpu.CalibrationWithEpoch()
	topo := d.qpu.Topology()
	t := &transpile.Target{
		NumQubits: topo.NumQubits(),
		Edges:     topo.Edges(),
		F1Q:       make([]float64, topo.NumQubits()),
		FRead:     make([]float64, topo.NumQubits()),
		FCZ:       make(map[[2]int]float64, len(topo.Edges())),
	}
	for q := 0; q < topo.NumQubits(); q++ {
		t.F1Q[q] = calib.Qubits[q].F1Q
		t.FRead[q] = calib.Qubits[q].FReadout
	}
	for _, e := range topo.Edges() {
		t.FCZ[e] = calib.FCZ(e[0], e[1])
	}
	return t, epoch
}

// Calibration implements Interface.
func (d *Device) Calibration() *device.Calibration {
	return d.qpu.Calibration()
}

// CalibrationEpoch returns the device's calibration-change counter: equal
// epochs guarantee that a Target snapshot taken earlier is still exact, so
// JIT-compilation results can be reused (the QRM transpile cache keys on
// circuit fingerprint + this epoch).
func (d *Device) CalibrationEpoch() uint64 {
	return d.qpu.CalibEpoch()
}

// QPU exposes the underlying device for execution paths that hold a QDMI
// handle (the QRM).
func (d *Device) QPU() *device.QPU { return d.qpu }

// CollectorName implements telemetry.Collector: the QDMI device doubles as
// a DCDB plugin publishing the Figure 4 fidelity series plus qubit health.
func (d *Device) CollectorName() string { return "qdmi-" + d.qpu.Name() }

// Collect implements telemetry.Collector.
func (d *Device) Collect() map[string]float64 {
	c := d.qpu.Calibration()
	out := map[string]float64{
		"fidelity_1q":       c.MeanF1Q(),
		"fidelity_readout":  c.MeanFReadout(),
		"fidelity_cz":       c.MeanFCZ(),
		"calibration_age_h": c.AgeHours,
		"tls_active":        float64(d.qpu.ActiveTLSCount()),
	}
	for q, qc := range c.Qubits {
		out[fmt.Sprintf("qubit_%02d_f1q", q)] = qc.F1Q
		out[fmt.Sprintf("qubit_%02d_t1_us", q)] = qc.T1
	}
	return out
}

// Store returns the attached telemetry store (may be nil).
func (d *Device) Store() *telemetry.Store { return d.store }

var _ Interface = (*Device)(nil)
var _ telemetry.Collector = (*Device)(nil)
