package qdmi

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/telemetry"
	"repro/internal/transpile"
)

func TestProperties(t *testing.T) {
	d := NewDevice(device.New20Q(1), nil)
	p := d.Properties()
	if p.NumQubits != 20 {
		t.Errorf("qubits = %d", p.NumQubits)
	}
	if p.Name != "garnet-20" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.NativeOps) != 4 {
		t.Errorf("native ops = %v", p.NativeOps)
	}
	if len(p.CouplingMap) != 20 {
		t.Errorf("coupling map size = %d", len(p.CouplingMap))
	}
	if p.DigitalTwin {
		t.Error("real device flagged as twin")
	}
	if !NewDevice(device.NewTwin20Q(1), nil).Properties().DigitalTwin {
		t.Error("twin not flagged")
	}
}

func TestTargetCarriesLiveFidelities(t *testing.T) {
	qpu := device.New20Q(2)
	d := NewDevice(qpu, nil)
	before := d.Target()
	qpu.AdvanceDrift(24 * 14)
	after := d.Target()
	meanBefore, meanAfter := 0.0, 0.0
	for q := 0; q < 20; q++ {
		meanBefore += before.F1Q[q]
		meanAfter += after.F1Q[q]
	}
	if meanAfter >= meanBefore {
		t.Error("Target should reflect drifted fidelities")
	}
	if err := after.Validate(); err != nil {
		t.Errorf("target invalid: %v", err)
	}
	if len(after.FCZ) != 31 {
		t.Errorf("FCZ entries = %d, want 31", len(after.FCZ))
	}
}

func TestTargetUsableByTranspiler(t *testing.T) {
	d := NewDevice(device.New20Q(3), nil)
	res, err := transpile.Transpile(circuit.GHZ(8), d.Target(), transpile.Options{
		Placement: transpile.PlaceFidelityAware,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The JIT-compiled circuit must execute directly on the device.
	if _, err := d.QPU().Execute(res.Circuit, 50); err != nil {
		t.Fatalf("JIT output not executable: %v", err)
	}
}

func TestCollectPublishesFigure4Series(t *testing.T) {
	store := telemetry.NewStore(0)
	d := NewDevice(device.New20Q(4), store)
	poller := telemetry.NewPoller(store)
	poller.Register(d)
	poller.Poll(0)
	poller.Poll(3600)
	for _, sensor := range []string{"fidelity_1q", "fidelity_readout", "fidelity_cz"} {
		if got := store.Count(sensor); got != 2 {
			t.Errorf("%s samples = %d, want 2", sensor, got)
		}
	}
	latest, ok := store.Latest("fidelity_1q")
	if !ok || latest.Value < 0.99 {
		t.Errorf("fidelity_1q latest = %+v", latest)
	}
	if got := store.Count("qubit_07_f1q"); got != 2 {
		t.Errorf("per-qubit sensor samples = %d, want 2", got)
	}
}

func TestCalibrationSnapshotIsolated(t *testing.T) {
	qpu := device.New20Q(5)
	d := NewDevice(qpu, nil)
	snap := d.Calibration()
	snap.Qubits[0].F1Q = 0.1
	if d.Calibration().Qubits[0].F1Q == 0.1 {
		t.Error("Calibration() returned a live reference, want a snapshot")
	}
}
