package qrm

import (
	"sync"

	"repro/internal/transpile"
)

// transpileCache memoizes JIT-compilation results keyed on circuit
// fingerprint, placement strategy, and device calibration epoch. The epoch
// makes invalidation exact: the compiled placement/routing is a function of
// the calibration snapshot, so a drift advance or recalibration (which bumps
// the epoch) naturally orphans stale entries. Concurrent misses on the same
// key are collapsed single-flight style — the first worker compiles while
// the rest wait for its result, so a 16-worker batch of one repeated circuit
// compiles exactly once.
type transpileCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

type cacheKey struct {
	fingerprint uint64
	static      bool
	epoch       uint64
}

type cacheEntry struct {
	ready chan struct{} // closed once res/err are set
	res   *transpile.Result
	err   error
}

// maxCacheEntries bounds memory for pathological workloads (every job a
// distinct circuit). Eviction drops entries from superseded epochs first
// and falls back to clearing the map — a full recompile is always correct.
const maxCacheEntries = 512

func newTranspileCache() *transpileCache {
	return &transpileCache{entries: make(map[cacheKey]*cacheEntry)}
}

// getOrCompile returns the cached result for key, or runs compile exactly
// once across concurrent callers and caches it. hit reports whether this
// caller was served from cache (including waiting on another caller's
// in-flight compilation). Failed compilations are not cached: the error is
// returned to everyone waiting on the flight, then the entry is dropped so
// a later submission retries.
func (c *transpileCache) getOrCompile(key cacheKey, compile func() (*transpile.Result, error)) (res *transpile.Result, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.res, true, e.err
	}
	c.evictLocked(key.epoch)
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.res, e.err = compile()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		// Only remove our own entry: eviction may have dropped it already
		// and another caller may have registered a fresh flight under the
		// same key in the meantime.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.res, false, e.err
}

// completed reports whether an entry's compilation has finished.
func (e *cacheEntry) completed() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// evictLocked keeps the cache bounded. Entries from other epochs are dead
// (the calibration they were compiled against no longer exists) and go
// first; if the current epoch alone overflows, completed entries are
// dropped too. In-flight entries are never evicted — removing them would
// break the single-flight guarantee and let concurrent workers recompile
// the same circuit.
func (c *transpileCache) evictLocked(currentEpoch uint64) {
	if len(c.entries) < maxCacheEntries {
		return
	}
	for k, e := range c.entries {
		if k.epoch != currentEpoch && e.completed() {
			delete(c.entries, k)
		}
	}
	if len(c.entries) < maxCacheEntries {
		return
	}
	for k, e := range c.entries {
		if e.completed() {
			delete(c.entries, k)
		}
	}
}

// Len reports the number of cached compilations (for tests and metrics).
func (c *transpileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
