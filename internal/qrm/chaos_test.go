package qrm

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
)

// Chaos-regression tests for the pipeline's fragile edges: cancellation
// racing the terminal transition, and the lossy event bus's dropped-event
// accounting under forced overflow. Both are exact-invariant tests, not
// smoke — a lost or double-counted transition fails them.

// TestCancelRacesTerminalTransition fires a cancel at every job from a
// concurrent goroutine with a staggered delay, so cancellations land in
// every pipeline stage: still queued, compiling, mid-execution, and after
// the terminal transition (where Cancel must refuse). The invariants:
// every job ends done or cancelled (never failed, never stuck), the
// terminal counters partition the submissions exactly, and the event bus
// saw exactly one terminal transition per job with nothing after it.
func TestCancelRacesTerminalTransition(t *testing.T) {
	qpu := device.NewTwin20Q(77)
	qpu.SetExecLatency(300 * time.Microsecond)
	m := NewManager(qdmi.NewDevice(qpu, nil))
	m.Start(4)
	defer m.Stop()

	sub := m.Events().Subscribe(0, 1<<14)
	defer sub.Close()
	var events []Event
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range sub.Events() {
			events = append(events, ev)
		}
	}()

	const jobs = 160
	ids := make([]int, 0, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		id, err := m.Submit(Request{Circuit: circuit.GHZ(3 + i%3), Shots: 5, User: "chaos"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		wg.Add(1)
		go func(id, i int) {
			defer wg.Done()
			// Staggered across the queue's full drain time (~160 jobs x
			// 300µs / 4 workers), so cancels land in every stage: queued,
			// compiling, mid-execution, and already terminal.
			time.Sleep(time.Duration(i) * 75 * time.Microsecond)
			m.Cancel(id) // error = already terminal; that's a legal outcome
		}(id, i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, cancelled := 0, 0
	for _, id := range ids {
		j, err := m.AwaitTerminal(ctx, id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		switch j.Status {
		case StatusDone:
			done++
		case StatusCancelled:
			cancelled++
		default:
			t.Errorf("job %d ended %s (%s) — cancel vs terminal race leaked a state", id, j.Status, j.Error)
		}
	}

	mm := m.Metrics()
	if mm.Completed != uint64(done) || mm.Cancelled != uint64(cancelled) {
		t.Errorf("metrics done/cancelled = %d/%d, records say %d/%d",
			mm.Completed, mm.Cancelled, done, cancelled)
	}
	if mm.Completed+mm.Cancelled != jobs || mm.Failed != 0 {
		t.Errorf("terminal counters don't partition %d jobs: done %d + cancelled %d, failed %d",
			jobs, mm.Completed, mm.Cancelled, mm.Failed)
	}

	// Event-stream invariant: exactly one terminal event per job, nothing
	// published for a job after its terminal event.
	sub.Close()
	<-eventsDone
	if n := sub.Dropped(); n != 0 {
		t.Fatalf("firehose dropped %d events; enlarge the buffer, the accounting below needs all of them", n)
	}
	terminalAt := map[int]uint64{}
	for _, ev := range events {
		isTerminal := ev.To == string(StatusDone) || ev.To == string(StatusCancelled) || ev.To == string(StatusFailed)
		if at, seen := terminalAt[ev.JobID]; seen && ev.Seq > at {
			t.Errorf("job %d: event %s→%s (seq %d) published after terminal (seq %d)",
				ev.JobID, ev.From, ev.To, ev.Seq, at)
		}
		if isTerminal {
			if _, dup := terminalAt[ev.JobID]; dup {
				t.Errorf("job %d: second terminal event %s→%s", ev.JobID, ev.From, ev.To)
			}
			terminalAt[ev.JobID] = ev.Seq
		}
	}
	if len(terminalAt) != jobs {
		t.Errorf("terminal events for %d jobs, want %d", len(terminalAt), jobs)
	}
	t.Logf("%d done, %d cancelled, %d events, 0 dropped", done, cancelled, len(events))
}

// TestSubscriptionDroppedCounterExact forces buffer overflow on a slow
// subscriber and checks the Dropped counter to the event: delivered +
// buffered + dropped must equal published, sequentially and under
// concurrent publishers, and a job-filtered subscription must not charge
// non-matching events against its buffer.
func TestSubscriptionDroppedCounterExact(t *testing.T) {
	// Sequential: 4-slot buffer, 100 events, no draining.
	bus := NewEventBus()
	slow := bus.Subscribe(0, 4)
	for i := 0; i < 100; i++ {
		bus.Publish(Event{JobID: 1, To: "queued"})
	}
	if n := slow.Dropped(); n != 96 {
		t.Errorf("dropped = %d, want 96 (100 published, 4 buffered)", n)
	}
	// Drain the 4, publish 3 more: they fit, dropped must not move.
	for i := 0; i < 4; i++ {
		<-slow.Events()
	}
	for i := 0; i < 3; i++ {
		bus.Publish(Event{JobID: 1, To: "queued"})
	}
	if n := slow.Dropped(); n != 96 {
		t.Errorf("dropped moved to %d after the buffer had room", n)
	}

	// Filtered: events for other jobs are invisible, not drops.
	filtered := bus.Subscribe(7, 1)
	for i := 0; i < 50; i++ {
		bus.Publish(Event{JobID: 8, To: "queued"})
	}
	if n := filtered.Dropped(); n != 0 {
		t.Errorf("filtered subscription charged %d drops for non-matching events", n)
	}
	bus.Publish(Event{JobID: 7, To: "queued"})
	bus.Publish(Event{JobID: 7, To: "running"}) // buffer of 1 is full now
	if n := filtered.Dropped(); n != 1 {
		t.Errorf("filtered dropped = %d, want exactly 1", n)
	}
	bus.Close()

	// Concurrent: 4 publishers x 500 events against a tiny buffer the
	// consumer drains only afterwards. Publish serializes on the bus lock,
	// so received + dropped must account for every single event.
	bus2 := NewEventBus()
	sub := bus2.Subscribe(0, 8)
	var wg sync.WaitGroup
	const publishers, perPublisher = 4, 500
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				bus2.Publish(Event{JobID: 1, To: "queued"})
			}
		}()
	}
	wg.Wait()
	received := 0
	for {
		select {
		case <-sub.Events():
			received++
			continue
		default:
		}
		break
	}
	total := received + int(sub.Dropped())
	if total != publishers*perPublisher {
		t.Errorf("received %d + dropped %d = %d, want %d — overflow accounting lost events",
			received, sub.Dropped(), total, publishers*perPublisher)
	}
	bus2.Close()
}
