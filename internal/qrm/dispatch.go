package qrm

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/transpile"
)

// This file is the asynchronous dispatch pipeline: a worker pool that
// overlaps JIT compilation and QPU round-trips for independent jobs, the
// concurrency the serialized Step loop cannot provide under batch load.
// Workers claim the highest-priority queued job, compile it through the
// shared transpile cache (cache.go), optionally pass the HPC QPU-slot
// admission gate, execute, and release waiters. The QPU itself stays
// correct under concurrent Execute calls (the device snapshots calibration
// under its own lock), so the pipeline needs no global serialization.

// Start launches nWorkers dispatch workers. It is an error to start an
// already-running pipeline. Synchronous Step/Drain calls are rejected while
// the pipeline runs; use WaitJob / WaitIdle instead.
func (m *Manager) Start(nWorkers int) error {
	if nWorkers < 1 {
		return fmt.Errorf("qrm: worker count must be >= 1, got %d", nWorkers)
	}
	m.mu.Lock()
	if m.workers > 0 {
		m.mu.Unlock()
		return fmt.Errorf("qrm: pipeline already running with %d workers", m.workers)
	}
	m.stopping = false
	m.workers = nWorkers
	m.stopCh = make(chan struct{})
	// Register the workers before m.workers becomes visible to Stop: a
	// concurrent Stop must not wg.Wait on a zero counter and declare the
	// pool gone while the goroutines below are still being spawned.
	m.wg.Add(nWorkers)
	m.mu.Unlock()
	for i := 0; i < nWorkers; i++ {
		go m.workerLoop()
	}
	return nil
}

// Stop shuts the worker pool down, waiting for in-flight jobs to complete.
// Queued jobs remain queued and survive a later Start. Stop on a stopped
// manager is a no-op, and concurrent Stops are safe: one caller performs
// the shutdown while the others wait for it to finish.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.workers == 0 {
		m.mu.Unlock()
		return
	}
	if m.stopping {
		// Another Stop owns the shutdown; wait for that specific generation
		// to finish. Waiting on workers==0 instead would latch onto a
		// pipeline a concurrent Start spins up after the shutdown.
		stopCh := m.stopCh
		for m.stopCh == stopCh {
			m.cond.Wait()
		}
		m.mu.Unlock()
		return
	}
	m.stopping = true
	m.cond.Broadcast()
	stopCh := m.stopCh
	m.mu.Unlock()
	m.wg.Wait() // in-flight jobs finish first, so their waiters get results
	close(stopCh)
	m.mu.Lock()
	m.workers = 0
	m.stopping = false
	m.stopCh = nil // marks this shutdown generation complete
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Running reports whether the dispatch pipeline is active.
func (m *Manager) Running() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers > 0 && !m.stopping
}

// Workers returns the configured worker count (0 when stopped).
func (m *Manager) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers
}

// WaitJob blocks until the job reaches a terminal status and returns its
// record. It requires the pipeline to be running (or the job to already be
// terminal) — in synchronous mode nothing would ever complete the job. If
// the pipeline stops while the job is still queued, WaitJob returns an
// error instead of blocking forever; the job stays queued for a restart.
func (m *Manager) WaitJob(id int) (*Job, error) {
	return m.WaitJobContext(context.Background(), id)
}

// WaitJobContext is WaitJob with caller-controlled cancellation: it
// returns the context's error as soon as ctx is done, leaving the job
// untouched on the pipeline. WaitJob is this with a background context.
func (m *Manager) WaitJobContext(ctx context.Context, id int) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("qrm: no job %d", id)
	}
	// A queued job needs live workers to ever complete. An in-flight job
	// (compiling/running) is safe to wait on even during a shutdown: Stop
	// lets dispatched jobs finish before closing stopCh.
	if j.Status == StatusQueued && (m.workers == 0 || m.stopping) {
		m.mu.Unlock()
		return nil, fmt.Errorf("qrm: job %d pending but no dispatch workers running", id)
	}
	ch := j.done
	stopCh := m.stopCh
	m.mu.Unlock()
	select {
	case <-ch:
		return m.Job(id)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-stopCh:
		// Stop closes stopCh only after in-flight jobs complete; recheck in
		// case ours was one of them.
		select {
		case <-ch:
			return m.Job(id)
		default:
			return nil, fmt.Errorf("qrm: pipeline stopped with job %d still queued", id)
		}
	}
}

// AwaitTerminal blocks until the job reaches a terminal status or ctx
// ends, regardless of pipeline state — the long-poll primitive. Unlike
// WaitJob it does not error on a queued job with no workers: it simply
// waits out the caller's budget (someone else may drain the queue or start
// the pipeline meanwhile) and returns the current record either way.
func (m *Manager) AwaitTerminal(ctx context.Context, id int) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("qrm: no job %d", id)
	}
	ch := j.done
	m.mu.Unlock()
	select {
	case <-ch:
	case <-ctx.Done():
	}
	return m.Job(id)
}

// WaitEach waits for every listed job concurrently and invokes fn once per
// job *in completion order* — the primitive behind per-job batch streaming
// (mqss server NDJSON responses and client-side StreamBatch both build on
// it). fn runs on the caller's goroutine, so it needs no locking; err is
// the WaitJob error for that id (e.g. the pipeline stopped with the job
// still queued) with j nil.
func (m *Manager) WaitEach(ids []int, fn func(id int, j *Job, err error)) {
	type waited struct {
		id  int
		j   *Job
		err error
	}
	ch := make(chan waited, len(ids))
	for _, id := range ids {
		go func(id int) {
			j, err := m.WaitJob(id)
			ch <- waited{id: id, j: j, err: err}
		}(id)
	}
	for range ids {
		w := <-ch
		fn(w.id, w.j, w.err)
	}
}

// Load returns the queue depth and in-flight count in one lock acquisition —
// the cheap load signal fleet routing reads per decision (Metrics would
// snapshot four histograms per call).
func (m *Manager) Load() (queued, inflight int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queue.Len(), m.inflight
}

// WaitIdle blocks until the queue is empty and no job is in flight — the
// pipeline-mode analogue of Drain.
func (m *Manager) WaitIdle() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.queue.Len() > 0 || m.inflight > 0 {
		m.cond.Wait()
	}
}

// workerLoop is one dispatch worker: claim, compile, execute, repeat.
func (m *Manager) workerLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.stopping && (!m.online || m.queue.Len() == 0) {
			m.cond.Wait()
		}
		if m.stopping {
			m.mu.Unlock()
			return
		}
		j := m.claimLocked()
		if j == nil {
			// Every queued job expired at the claim gate; park again.
			m.mu.Unlock()
			continue
		}
		m.inflight++
		m.mu.Unlock()

		m.dispatchOne(j)

		m.mu.Lock()
		m.inflight--
		m.cond.Broadcast() // wake WaitIdle and idle workers
		m.mu.Unlock()
	}
}

// dispatchOne compiles and executes one claimed job. Shared by the
// synchronous Step path and the pipeline workers; the job is already off
// the queue in StatusCompiling. The body runs under pprof labels (job id,
// device) so CPU profiles of the dispatch pipeline attribute by job.
func (m *Manager) dispatchOne(j *Job) {
	labels := pprof.Labels(
		"qrm_job", strconv.Itoa(j.ID),
		"device", m.dev.QPU().Name(),
	)
	pprof.Do(context.Background(), labels, func(context.Context) {
		m.dispatchOneLabeled(j)
	})
}

func (m *Manager) dispatchOneLabeled(j *Job) {
	placement := transpile.PlaceFidelityAware
	if j.Request.StaticPlacement {
		placement = transpile.PlaceStatic
	}
	// JIT compile against the *current* device state (Fig. 3 loop), through
	// the cache: batch workloads resubmitting the same circuit (the VQE
	// measurement loop) compile once per calibration epoch. Only the epoch
	// (one uint64) is read up front for the key; the full target snapshot —
	// a calibration clone under the device lock — is built in the miss path
	// only, so the ~95%+ of jobs served from cache skip it. If a drift tick
	// lands between the epoch read and the snapshot, the entry holds a
	// *newer*-epoch compile under the older key, which is harmless: epochs
	// only advance, so later jobs never read this entry, and same-flight
	// waiters get a result at least as fresh as their key promised.
	key := cacheKey{
		fingerprint: j.Request.Circuit.Fingerprint(),
		static:      j.Request.StaticPlacement,
		epoch:       m.dev.CalibrationEpoch(),
	}
	compileStart := time.Now()
	compileSpan := j.span.StartChild("compile")
	res, hit, err := m.cache.getOrCompile(key, func() (*transpile.Result, error) {
		return transpile.Transpile(j.Request.Circuit, m.dev.Target(), transpile.Options{
			Placement: placement,
		})
	})
	if hit {
		compileSpan.End(trace.Str("cache", "hit"))
	} else {
		compileSpan.End(trace.Str("cache", "miss"))
	}
	m.mu.Lock()
	if !hit {
		// The flight owner compiled (successfully or not): a real miss.
		m.metrics.cacheMisses++
		m.metrics.compile.Observe(float64(time.Since(compileStart).Microseconds()) / 1000)
	} else if err == nil {
		// Waiters on a failed flight got an error, not a reused result —
		// only successful reuse counts as a hit.
		m.metrics.cacheHits++
	}
	m.mu.Unlock()
	if err != nil {
		m.finish(j, nil, 0, fmt.Errorf("compile: %w", err))
		return
	}
	m.mu.Lock()
	j.CompiledGates = res.Stats.OutputGates
	j.CZCount = res.Stats.OutputCZ
	j.Layout = res.FinalLayout[:j.Request.Circuit.NumQubits]
	j.CompileStats = res.Stats.String()
	if j.cancelReq {
		// Cancel requested while compiling: honor it before the QPU
		// round-trip (finish also checks, but skipping execution here saves
		// the device work entirely).
		m.terminateLocked(j, StatusCancelled)
		m.metrics.cancelled++
		m.mu.Unlock()
		return
	}
	j.Status = StatusRunning
	m.publishLocked(j, StatusCompiling, "")
	gate := m.gate
	m.mu.Unlock()

	// Admission: the HPC scheduler owns the QPU; claim a slot for the
	// duration of the hardware round-trip.
	if gate != nil {
		gate.Acquire()
	}
	execStart := time.Now()
	execSpan := j.span.StartChild("execute",
		trace.Int("shots", j.Request.Shots), trace.Int("gates", j.CompiledGates))
	execCtx := trace.ContextWithSpan(context.Background(), execSpan)
	out, err := m.dev.QPU().ExecuteCtx(execCtx, res.Circuit, j.Request.Shots)
	execSpan.End()
	execMs := float64(time.Since(execStart).Microseconds()) / 1000
	if gate != nil {
		gate.Release()
	}
	m.mu.Lock()
	m.metrics.exec.Observe(execMs)
	m.mu.Unlock()
	if err != nil {
		m.finish(j, nil, 0, fmt.Errorf("execute: %w", err))
		return
	}
	m.finish(j, out.Counts, out.DurationUs, nil)
}

// metrics is the pipeline's internal instrumentation. Counters are guarded
// by Manager.mu; histograms are internally synchronized.
type metrics struct {
	submitted   uint64
	completed   uint64
	failed      uint64
	cancelled   uint64
	interrupted uint64
	expired     uint64 // deadline passed before a worker claimed the job
	shed        uint64 // evicted by admission control (queue over bounds)
	cacheHits   uint64
	cacheMisses uint64

	maxQueueDepth int

	queueWait *telemetry.Histogram // ms from submit to claim
	compile   *telemetry.Histogram // ms per cache-miss compilation
	exec      *telemetry.Histogram // ms per device round-trip
	e2e       *telemetry.Histogram // ms from submit to terminal
}

func (mt *metrics) init() {
	bounds := telemetry.ExponentialBounds(0.01, 2, 24) // 10 µs .. ~84 s
	mt.queueWait = mustHistogram(bounds)
	mt.compile = mustHistogram(bounds)
	mt.exec = mustHistogram(bounds)
	mt.e2e = mustHistogram(bounds)
}

func mustHistogram(bounds []float64) *telemetry.Histogram {
	h, err := telemetry.NewHistogram(bounds)
	if err != nil {
		panic(err) // static bounds cannot fail
	}
	return h
}

func (mt *metrics) observeQueueDepth(depth int) {
	if depth > mt.maxQueueDepth {
		mt.maxQueueDepth = depth
	}
}

// Metrics is a point-in-time snapshot of pipeline health: queue state,
// outcome counters, transpile-cache effectiveness, and stage latency
// histograms (milliseconds).
type Metrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`

	Submitted     uint64 `json:"submitted"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Cancelled     uint64 `json:"cancelled"`
	Interrupted   uint64 `json:"interrupted"`
	Expired       uint64 `json:"expired"`
	Shed          uint64 `json:"shed"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	MaxQueueDepth int    `json:"max_queue_depth"`

	// Execution-engine counters from the device (batch dispatch reuses
	// compiled programs across identical jobs; these show it happening).
	SimCompileHits   uint64 `json:"sim_compile_hits"`
	SimCompileMisses uint64 `json:"sim_compile_misses"`
	SimFastPathJobs  uint64 `json:"sim_fast_path_jobs"`
	// Shot-branching engine counters: jobs routed to the trajectory tree,
	// the shots they carried, the unique leaf states those shots collapsed
	// into (leaves/shots << 1 is the amortization working), and noiseless
	// jobs served from the cached outcome distribution without simulating.
	SimBranchTreeJobs  uint64 `json:"sim_branch_tree_jobs"`
	SimBranchTreeShots uint64 `json:"sim_branch_tree_shots"`
	SimBranchLeaves    uint64 `json:"sim_branch_leaves"`
	SimDistCacheHits   uint64 `json:"sim_dist_cache_hits"`

	QueueWaitMs telemetry.HistogramSnapshot `json:"queue_wait_ms"`
	CompileMs   telemetry.HistogramSnapshot `json:"compile_ms"`
	ExecMs      telemetry.HistogramSnapshot `json:"exec_ms"`
	E2EMs       telemetry.HistogramSnapshot `json:"e2e_ms"`
}

// Metrics returns a snapshot of the pipeline instrumentation.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	out := Metrics{
		Workers:       m.workers,
		QueueDepth:    m.queue.Len(),
		Inflight:      m.inflight,
		Submitted:     m.metrics.submitted,
		Completed:     m.metrics.completed,
		Failed:        m.metrics.failed,
		Cancelled:     m.metrics.cancelled,
		Interrupted:   m.metrics.interrupted,
		Expired:       m.metrics.expired,
		Shed:          m.metrics.shed,
		CacheHits:     m.metrics.cacheHits,
		CacheMisses:   m.metrics.cacheMisses,
		MaxQueueDepth: m.metrics.maxQueueDepth,
	}
	m.mu.Unlock()
	es := m.dev.QPU().ExecStats()
	out.SimCompileHits = es.CompileHits
	out.SimCompileMisses = es.CompileMisses
	out.SimFastPathJobs = es.FastPathJobs
	out.SimBranchTreeJobs = es.BranchTreeJobs
	out.SimBranchTreeShots = es.BranchTreeShots
	out.SimBranchLeaves = es.BranchLeaves
	out.SimDistCacheHits = es.DistCacheHits
	out.QueueWaitMs = m.metrics.queueWait.Snapshot()
	out.CompileMs = m.metrics.compile.Snapshot()
	out.ExecMs = m.metrics.exec.Snapshot()
	out.E2EMs = m.metrics.e2e.Snapshot()
	return out
}

// HitRatio returns the transpile-cache hit fraction (0 when the cache has
// not been exercised).
func (s Metrics) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Gauges flattens the snapshot into the telemetry sensor set for the
// dispatch pipeline — the single definition shared by PublishMetrics and
// DCDB collector plugins (internal/core registers one).
func (s Metrics) Gauges() map[string]float64 {
	return map[string]float64{
		"qrm_queue_depth":         float64(s.QueueDepth),
		"qrm_inflight":            float64(s.Inflight),
		"qrm_completed":           float64(s.Completed),
		"qrm_cache_hit_ratio":     s.HitRatio(),
		"qrm_e2e_p95_ms":          s.E2EMs.Quantile(0.95),
		"qrm_sim_fastpath":        float64(s.SimFastPathJobs),
		"qrm_sim_branch_jobs":     float64(s.SimBranchTreeJobs),
		"qrm_sim_leaves_per_shot": s.BranchLeavesPerShot(),
		"qrm_sim_dist_cache_hits": float64(s.SimDistCacheHits),
	}
}

// BranchLeavesPerShot is the shot-branching amortization ratio: unique leaf
// states per trajectory shot (0 when the tree has not run).
func (s Metrics) BranchLeavesPerShot() float64 {
	if s.SimBranchTreeShots == 0 {
		return 0
	}
	return float64(s.SimBranchLeaves) / float64(s.SimBranchTreeShots)
}

// PublishMetrics appends the pipeline gauges to a telemetry store at
// simulation time t — the DCDB integration for the dispatch pipeline
// (queue depth, in-flight count, cache hit ratio, p95 end-to-end latency).
func (m *Manager) PublishMetrics(store *telemetry.Store, t float64) {
	if store == nil {
		return
	}
	for sensor, v := range m.Metrics().Gauges() {
		store.Append(sensor, t, v)
	}
}
