package qrm

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/hpc"
	"repro/internal/qdmi"
	"repro/internal/telemetry"
)

func TestStartValidation(t *testing.T) {
	m := newManager(20)
	if err := m.Start(0); err == nil {
		t.Error("zero workers should fail")
	}
	if err := m.Start(2); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := m.Start(2); err == nil {
		t.Error("double start should fail")
	}
	if !m.Running() || m.Workers() != 2 {
		t.Errorf("running=%v workers=%d", m.Running(), m.Workers())
	}
}

func TestStepRejectedWhilePipelineRuns(t *testing.T) {
	m := newManager(21)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if _, err := m.Step(); err == nil {
		t.Error("Step should be rejected while the pipeline runs")
	}
	if _, err := m.Drain(); err == nil {
		t.Error("Drain should be rejected while the pipeline runs")
	}
}

func TestPipelineCompletesJobs(t *testing.T) {
	m := newManager(22)
	if err := m.Start(4); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	ids := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		id, err := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 20, User: "pipe"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		j, err := m.WaitJob(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status != StatusDone {
			t.Fatalf("job %d = %s (%s)", id, j.Status, j.Error)
		}
		total := 0
		for _, c := range j.Counts {
			total += c
		}
		if total != 20 {
			t.Errorf("job %d counts = %d, want 20", id, total)
		}
	}
	snap := m.Metrics()
	if snap.Completed != 20 || snap.QueueDepth != 0 || snap.Inflight != 0 {
		t.Errorf("metrics = %+v", snap)
	}
}

func TestWaitJobWithoutWorkers(t *testing.T) {
	m := newManager(23)
	id, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitJob(id); err == nil {
		t.Error("WaitJob on a pending job without workers should fail fast")
	}
	if _, err := m.WaitJob(404); err == nil {
		t.Error("WaitJob on an unknown job should fail")
	}
	// After synchronous completion, WaitJob returns immediately.
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	j, err := m.WaitJob(id)
	if err != nil || j.Status != StatusDone {
		t.Errorf("terminal WaitJob = %+v, %v", j, err)
	}
}

func TestTranspileCacheHitsOnRepeatedCircuits(t *testing.T) {
	qpu := device.NewTwin20Q(24)
	m := NewManager(qdmi.NewDevice(qpu, nil))
	if err := m.Start(2); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{Circuit: circuit.GHZ(5), Shots: 5, User: "vqe"}
	}
	_, ids, err := m.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if j, err := m.WaitJob(id); err != nil || j.Status != StatusDone {
			t.Fatalf("job %d: %+v, %v", id, j, err)
		}
	}
	snap := m.Metrics()
	if snap.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (single-flight across repeats)", snap.CacheMisses)
	}
	if snap.CacheHits != 9 {
		t.Errorf("cache hits = %d, want 9", snap.CacheHits)
	}

	// A calibration-epoch bump must invalidate the cache.
	qpu.AdvanceDrift(1)
	id, err := m.Submit(Request{Circuit: circuit.GHZ(5), Shots: 5, User: "vqe"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitJob(id); err != nil {
		t.Fatal(err)
	}
	if snap := m.Metrics(); snap.CacheMisses != 2 {
		t.Errorf("cache misses after drift = %d, want 2", snap.CacheMisses)
	}
}

func TestCacheKeyDistinguishesPlacement(t *testing.T) {
	m := newManager(25)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	a, _ := m.Submit(Request{Circuit: circuit.GHZ(4), Shots: 5})
	b, _ := m.Submit(Request{Circuit: circuit.GHZ(4), Shots: 5, StaticPlacement: true})
	for _, id := range []int{a, b} {
		if _, err := m.WaitJob(id); err != nil {
			t.Fatal(err)
		}
	}
	if snap := m.Metrics(); snap.CacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (per-placement cache keys)", snap.CacheMisses)
	}
}

func TestPipelineWithQPUGate(t *testing.T) {
	sched, err := hpc.NewScheduler(4)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(26)
	m.SetGate(sched.QPUGate())
	if err := m.Start(8); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	ids := make([]int, 0, 16)
	for i := 0; i < 16; i++ {
		id, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		j, err := m.WaitJob(id)
		if err != nil || j.Status != StatusDone {
			t.Fatalf("gated job %d = %+v, %v", id, j, err)
		}
	}
	if sched.QPUGate().InUse() != 0 {
		t.Error("gate slots leaked")
	}
}

func TestPublishMetrics(t *testing.T) {
	m := newManager(27)
	store := telemetry.NewStore(0)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	id, _ := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5})
	if _, err := m.WaitJob(id); err != nil {
		t.Fatal(err)
	}
	m.PublishMetrics(store, 42)
	for _, sensor := range []string{"qrm_queue_depth", "qrm_inflight", "qrm_completed", "qrm_cache_hit_ratio", "qrm_e2e_p95_ms"} {
		if _, ok := store.Latest(sensor); !ok {
			t.Errorf("sensor %s not published", sensor)
		}
	}
}

// TestConcurrentDispatchStress is the -race workout: 16 workers, 200 jobs
// from concurrent submitters, with cancellations and an outage +
// requeue storm interleaved. Every job must land in a terminal state and
// the manager must quiesce.
func TestConcurrentDispatchStress(t *testing.T) {
	m := newManager(28)
	if err := m.Start(16); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	const nSubmitters = 4
	const jobsPerSubmitter = 50 // 200 total
	var mu sync.Mutex
	var ids []int

	var wg sync.WaitGroup
	for s := 0; s < nSubmitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < jobsPerSubmitter; i++ {
				id, err := m.Submit(Request{
					Circuit:  circuit.GHZ(2 + rng.Intn(3)),
					Shots:    1 + rng.Intn(5),
					Priority: rng.Intn(3),
					User:     "stress",
				})
				if err != nil {
					continue // offline window: the interrupter owns this race
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
			}
		}(s)
	}

	// Canceller: race cancellations against the workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 60; i++ {
			mu.Lock()
			n := len(ids)
			var id int
			if n > 0 {
				id = ids[rng.Intn(n)]
			}
			mu.Unlock()
			if id != 0 {
				_ = m.Cancel(id) // most will already be done; that's the point
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Interrupter: one outage + recovery + requeue mid-storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		m.SetOnline(false)
		time.Sleep(2 * time.Millisecond)
		m.SetOnline(true)
		requeued, _ := m.RequeueInterrupted()
		mu.Lock()
		ids = append(ids, requeued...)
		mu.Unlock()
	}()

	wg.Wait()
	m.WaitIdle()

	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		j, err := m.Job(id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		if !terminalStatus(j.Status) {
			t.Errorf("job %d stuck in %s", id, j.Status)
		}
		if j.Status == StatusDone {
			total := 0
			for _, c := range j.Counts {
				total += c
			}
			if total != j.Request.Shots {
				t.Errorf("job %d counts = %d, want %d", id, total, j.Request.Shots)
			}
		}
	}
	snap := m.Metrics()
	if snap.QueueDepth != 0 || snap.Inflight != 0 {
		t.Errorf("not quiesced: %+v", snap)
	}
	if snap.Completed == 0 {
		t.Error("no jobs completed under stress")
	}
}

func TestConcurrentStopsDoNotPanic(t *testing.T) {
	m := newManager(30)
	if err := m.Start(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 10})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Stop()
		}()
	}
	wg.Wait()
	if m.Running() {
		t.Error("manager still running after concurrent Stops")
	}
	// The pool restarts cleanly afterwards.
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	m.Stop()
}

func TestStopKeepsQueuedJobsAndRestarts(t *testing.T) {
	m := newManager(29)
	// Submit while stopped: stays queued.
	id, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitJob(id); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop() // idempotent
	id2, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.PendingCount() != 1 {
		t.Errorf("pending = %d, want 1", m.PendingCount())
	}
	if err := m.Start(2); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if j, err := m.WaitJob(id2); err != nil || j.Status != StatusDone {
		t.Errorf("restarted pipeline job = %+v, %v", j, err)
	}
}

// TestEngineMetricsSurfaceBranchTree checks that shot-branching engine
// counters reach the pipeline metrics snapshot: a batch of identical noisy
// jobs rides the trajectory tree, and a batch of identical noiseless jobs
// hits the cached outcome distribution.
func TestEngineMetricsSurfaceBranchTree(t *testing.T) {
	noisy := NewManager(qdmi.NewDevice(device.New20Q(44), nil))
	if err := noisy.Start(2); err != nil {
		t.Fatal(err)
	}
	defer noisy.Stop()
	for i := 0; i < 6; i++ {
		if _, err := noisy.Submit(Request{Circuit: circuit.GHZ(4), Shots: 100, User: "tree"}); err != nil {
			t.Fatal(err)
		}
	}
	noisy.WaitIdle()
	snap := noisy.Metrics()
	if snap.SimBranchTreeJobs != 6 || snap.SimBranchTreeShots != 600 {
		t.Errorf("branch-tree counters = %d jobs / %d shots, want 6 / 600 (%+v)",
			snap.SimBranchTreeJobs, snap.SimBranchTreeShots, snap)
	}
	if r := snap.BranchLeavesPerShot(); r <= 0 || r >= 1 {
		t.Errorf("leaves/shot = %.3f, want in (0, 1): the tree should amortize shots", r)
	}
	if _, ok := snap.Gauges()["qrm_sim_leaves_per_shot"]; !ok {
		t.Error("leaves-per-shot gauge missing from the telemetry set")
	}

	twin := newManager(45)
	if err := twin.Start(2); err != nil {
		t.Fatal(err)
	}
	defer twin.Stop()
	for i := 0; i < 5; i++ {
		if _, err := twin.Submit(Request{Circuit: circuit.GHZ(4), Shots: 100, User: "dist"}); err != nil {
			t.Fatal(err)
		}
	}
	twin.WaitIdle()
	snap = twin.Metrics()
	if snap.SimDistCacheHits != 4 {
		t.Errorf("dist-cache hits = %d, want 4 (first job simulates, four sample)", snap.SimDistCacheHits)
	}
}
