package qrm

import "sync"

// This file is the job event bus behind the v2 watch API: every lifecycle
// transition a Manager (or, one level up, the fleet scheduler) makes is
// published as an Event, and subscribers — REST watch streams, local
// JobHandle.Watch, tests — receive it without polling the job record. The
// bus is deliberately lossy for slow consumers: Publish never blocks the
// dispatch pipeline, so a subscriber that stops draining its channel drops
// events (counted per subscription) instead of wedging a worker.

// Event is one job lifecycle transition. From/To are status strings rather
// than JobStatus so the fleet scheduler can republish its own lifecycle
// (pending/routed/migrated) through the same bus.
type Event struct {
	// Seq is the bus-assigned publication order (monotonic, starts at 1).
	Seq uint64 `json:"seq"`
	// JobID is the publisher-scoped job ID (QRM-local or fleet-scoped).
	JobID int `json:"job_id"`
	// From is the status the job left ("" for the submission event).
	From string `json:"from,omitempty"`
	// To is the status the job entered.
	To string `json:"to"`
	// Device names the backend involved, when the publisher knows it.
	Device string `json:"device,omitempty"`
	// Reason qualifies the transition (e.g. "migrated", "parked",
	// "deadline", "cancel-requested").
	Reason string `json:"reason,omitempty"`
	// Time is the publisher's simulation clock at the transition.
	Time float64 `json:"time"`
}

// Subscription is one consumer's feed. Read from Events(); Close when done.
type Subscription struct {
	bus   *EventBus
	id    int
	jobID int // 0 = all jobs
	ch    chan Event

	mu      sync.Mutex
	dropped uint64
	closed  bool
}

// Events returns the subscription's channel. The bus closes it when either
// the subscription or the bus itself is closed.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events this subscription lost to a full buffer.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription and closes its channel. Idempotent.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	s.closeLocked()
}

// closeLocked requires bus.mu.
func (s *Subscription) closeLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.bus.subs, s.id)
	close(s.ch)
}

// EventBus fans job lifecycle events out to subscribers.
type EventBus struct {
	mu      sync.Mutex
	nextSeq uint64
	nextSub int
	subs    map[int]*Subscription
	closed  bool
	// droppedTotal accumulates every per-subscriber drop, including those
	// of subscriptions that have since closed — the /metrics counter needs
	// history, not just the currently-attached set.
	droppedTotal uint64
}

// BusStats is a point-in-time view of bus health for the metrics plane.
type BusStats struct {
	Published    uint64 // events assigned a sequence number
	DroppedTotal uint64 // deliveries lost to full subscriber buffers, ever
	Subscribers  int    // currently attached subscriptions
}

// Stats snapshots publication, drop and subscriber counters.
func (b *EventBus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BusStats{Published: b.nextSeq, DroppedTotal: b.droppedTotal, Subscribers: len(b.subs)}
}

// NewEventBus builds an empty bus.
func NewEventBus() *EventBus {
	return &EventBus{subs: make(map[int]*Subscription)}
}

// Subscribe attaches a consumer. jobID filters to one job (0 = every job);
// buffer sizes the delivery channel (minimum 1) — a terminal-state watcher
// needs only a handful of slots, a firehose consumer should size up.
func (b *EventBus) Subscribe(jobID, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSub++
	s := &Subscription{bus: b, id: b.nextSub, jobID: jobID, ch: make(chan Event, buffer)}
	if b.closed {
		// A closed bus yields an already-closed feed: the consumer's range
		// loop exits immediately instead of hanging.
		s.closed = true
		close(s.ch)
		return s
	}
	b.subs[s.id] = s
	return s
}

// Publish assigns the event its sequence number and delivers it to every
// matching subscriber without blocking: a full buffer drops the event for
// that subscriber only.
func (b *EventBus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.nextSeq++
	ev.Seq = b.nextSeq
	for _, s := range b.subs {
		if s.jobID != 0 && s.jobID != ev.JobID {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
			b.droppedTotal++
		}
	}
}

// Subscribers reports the live subscription count.
func (b *EventBus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close shuts the bus down, closing every subscriber channel. Further
// Publish calls are no-ops and further Subscribes return closed feeds.
func (b *EventBus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.subs {
		s.closeLocked()
	}
}
