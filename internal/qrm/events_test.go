package qrm

import (
	"context"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
)

// newPacedManager builds a manager over a twin device with a wall-clock
// control-electronics latency, so in-flight windows are wide enough to race
// cancellations into.
func newPacedManager(seed int64, latency time.Duration) *Manager {
	qpu := device.NewTwin20Q(seed)
	qpu.SetExecLatency(latency)
	return NewManager(qdmi.NewDevice(qpu, nil))
}

// drainEvents collects already-delivered events without blocking.
func drainEvents(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestEventBusLifecycleSequence(t *testing.T) {
	m := newManager(40)
	sub := m.Events().Subscribe(0, 64)
	defer sub.Close()
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	id, err := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 10, User: "ev"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitJob(id); err != nil {
		t.Fatal(err)
	}
	// The terminal event is published before WaitJob unblocks (same lock
	// section closes done), but channel delivery is async; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var states []string
	for time.Now().Before(deadline) {
		states = states[:0]
		for _, ev := range drainEvents(sub) {
			if ev.JobID == id {
				states = append(states, ev.To)
			}
		}
		if len(states) >= 4 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	want := []string{"queued", "compiling", "running", "done"}
	if len(states) != len(want) {
		t.Fatalf("event states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (all: %v)", i, states[i], want[i], states)
		}
	}
}

func TestEventBusFilteredSubscriptionAndSeq(t *testing.T) {
	bus := NewEventBus()
	all := bus.Subscribe(0, 8)
	only2 := bus.Subscribe(2, 8)
	bus.Publish(Event{JobID: 1, To: "queued"})
	bus.Publish(Event{JobID: 2, To: "queued"})
	bus.Publish(Event{JobID: 2, To: "done"})
	if got := len(drainEvents(all)); got != 3 {
		t.Errorf("all-subscription saw %d events, want 3", got)
	}
	evs := drainEvents(only2)
	if len(evs) != 2 {
		t.Fatalf("filtered subscription saw %d events, want 2", len(evs))
	}
	if evs[0].Seq >= evs[1].Seq || evs[0].Seq == 0 {
		t.Errorf("sequence numbers not monotonic: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	bus.Close()
	if _, ok := <-all.Events(); ok {
		t.Error("bus close should close subscriber channels")
	}
	// Subscribing to a closed bus yields an immediately-closed feed.
	if _, ok := <-bus.Subscribe(0, 1).Events(); ok {
		t.Error("subscription on a closed bus should be closed")
	}
}

func TestEventBusSlowSubscriberDrops(t *testing.T) {
	bus := NewEventBus()
	defer bus.Close()
	slow := bus.Subscribe(0, 2)
	for i := 0; i < 10; i++ {
		bus.Publish(Event{JobID: 1, To: "queued"})
	}
	if slow.Dropped() != 8 {
		t.Errorf("dropped = %d, want 8", slow.Dropped())
	}
	if got := len(drainEvents(slow)); got != 2 {
		t.Errorf("delivered = %d, want 2 (buffer size)", got)
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	m := newManager(41)
	id, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5, DeadlineMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	okID, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the 1 ms dispatch budget lapse
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Job(id)
	if j.Status != StatusFailed || j.Error != ErrDeadlineMsg {
		t.Errorf("expired job = %s (%q), want failed with deadline message", j.Status, j.Error)
	}
	if ok, _ := m.Job(okID); ok.Status != StatusDone {
		t.Errorf("deadline-free job = %s, want done", ok.Status)
	}
	if snap := m.Metrics(); snap.Expired != 1 || snap.Failed != 1 {
		t.Errorf("expired=%d failed=%d, want 1/1", snap.Expired, snap.Failed)
	}
}

func TestCancelInFlight(t *testing.T) {
	m := newPacedManager(42, 50*time.Millisecond)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	id, err := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to claim the job (it leaves the queue).
	deadline := time.Now().Add(2 * time.Second)
	for {
		j, _ := m.Job(id)
		if j.Status == StatusCompiling || j.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never left the queue (status %s)", j.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatalf("in-flight cancel: %v", err)
	}
	j, err := m.WaitJob(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusCancelled {
		t.Errorf("status = %s, want cancelled (in-flight cancel must win)", j.Status)
	}
	if len(j.Counts) != 0 {
		t.Error("cancelled job must not carry results")
	}
	if err := m.Cancel(id); err == nil {
		t.Error("cancel of a terminal job should error")
	}
	if err := m.Cancel(999); err == nil {
		t.Error("cancel of an unknown job should error")
	}
}

func TestWaitJobContextCancellation(t *testing.T) {
	m := newPacedManager(43, 50*time.Millisecond)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	id, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := m.WaitJobContext(ctx, id); err != context.DeadlineExceeded {
		t.Errorf("WaitJobContext = %v, want context.DeadlineExceeded", err)
	}
	// The job itself is untouched and completes normally.
	if j, err := m.WaitJob(id); err != nil || j.Status != StatusDone {
		t.Errorf("job after abandoned wait = %+v, %v", j, err)
	}
}

func TestListJobsCursor(t *testing.T) {
	m := newManager(44)
	users := []string{"a", "b"}
	for i := 0; i < 7; i++ {
		if _, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5, User: users[i%2]}); err != nil {
			t.Fatal(err)
		}
	}
	// Newest first, cursor walk in pages of 3: 7,6,5 | 4,3,2 | 1.
	var seen []int
	before := 0
	for {
		jobs, more := m.ListJobs("", nil, before, 3)
		for _, j := range jobs {
			seen = append(seen, j.ID)
		}
		if !more {
			break
		}
		before = jobs[len(jobs)-1].ID
	}
	if len(seen) != 7 || seen[0] != 7 || seen[6] != 1 {
		t.Fatalf("cursor walk = %v", seen)
	}
	// User filter with states.
	jobs, more := m.ListJobs("a", map[JobStatus]bool{StatusQueued: true}, 0, 10)
	if len(jobs) != 4 || more {
		t.Errorf("filtered list = %d jobs (more=%v), want 4", len(jobs), more)
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if jobs, _ := m.ListJobs("", map[JobStatus]bool{StatusQueued: true}, 0, 10); len(jobs) != 0 {
		t.Errorf("queued filter after drain = %d jobs, want 0", len(jobs))
	}
}
