package qrm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot is the serialized QRM job store — the durable state behind the
// "more robust job restart tools after system outages" users asked for in
// §4. After a control-computer restart, LoadSnapshot restores history and
// re-queues whatever was interrupted.
type Snapshot struct {
	Version   int    `json:"version"`
	NextID    int    `json:"next_id"`
	NextBatch int    `json:"next_batch"`
	Jobs      []*Job `json:"jobs"` // in submission order
}

const snapshotVersion = 1

// SaveSnapshot writes the full job store to w as JSON.
func (m *Manager) SaveSnapshot(w io.Writer) error {
	m.mu.Lock()
	snap := Snapshot{
		Version:   snapshotVersion,
		NextID:    m.nextID,
		NextBatch: m.nextBatch,
	}
	for _, id := range m.order {
		cp := *m.jobs[id]
		snap.Jobs = append(snap.Jobs, &cp)
	}
	m.mu.Unlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("qrm: encoding snapshot: %w", err)
	}
	return nil
}

// SaveSnapshotFile writes the job store to path atomically *and durably*:
// temp file in the same directory, fsync the file, rename, fsync the
// parent directory. Rename alone makes the swap atomic against torn
// writes, but neither the temp file's blocks nor the directory entry are
// guaranteed on stable storage until both fsyncs — a power cut after a
// sync-less rename can surface the old file, an empty new one, or nothing.
// This is the shutdown hook qhpcd calls after draining the pipeline.
func (m *Manager) SaveSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("qrm: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := m.SaveSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("qrm: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("qrm: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("qrm: publishing snapshot: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("qrm: opening snapshot dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("qrm: syncing snapshot dir: %w", err)
	}
	return nil
}

// LoadSnapshot replaces the manager's job store with the snapshot's
// contents. Jobs that were queued, compiling or running at snapshot time
// are marked interrupted (they did not survive the restart); call
// RequeueInterrupted to resubmit them. The manager must be freshly
// constructed (empty), otherwise an error is returned.
func (m *Manager) LoadSnapshot(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("qrm: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("qrm: snapshot version %d unsupported (want %d)", snap.Version, snapshotVersion)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.jobs) != 0 {
		return fmt.Errorf("qrm: LoadSnapshot requires an empty manager (%d jobs present)", len(m.jobs))
	}
	// Defensive ordering: snapshots written by SaveSnapshot are already in
	// submission order, but sorting keeps hand-edited files usable.
	jobs := append([]*Job(nil), snap.Jobs...)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	for _, j := range jobs {
		if j == nil || j.ID == 0 {
			return fmt.Errorf("qrm: snapshot contains a malformed job")
		}
		cp := *j
		switch cp.Status {
		case StatusQueued, StatusCompiling, StatusRunning:
			cp.Status = StatusInterrupted
		}
		cp.done = make(chan struct{})
		if terminalStatus(cp.Status) {
			close(cp.done)
		}
		m.jobs[cp.ID] = &cp
		m.order = append(m.order, cp.ID)
	}
	m.nextID = snap.NextID
	m.nextBatch = snap.NextBatch
	return nil
}
