package qrm

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
)

func TestSnapshotRoundTrip(t *testing.T) {
	m := newManager(31)
	idDone, _ := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 50, User: "alice"})
	m.Drain()
	idQueued, _ := m.Submit(Request{Circuit: circuit.GHZ(4), Shots: 50, User: "bob"})

	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh manager after a "restart".
	m2 := NewManager(qdmi.NewDevice(device.NewTwin20Q(31), nil))
	if err := m2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	done, err := m2.Job(idDone)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Errorf("completed job restored as %s", done.Status)
	}
	if len(done.Counts) == 0 {
		t.Error("results lost across snapshot")
	}
	queued, err := m2.Job(idQueued)
	if err != nil {
		t.Fatal(err)
	}
	if queued.Status != StatusInterrupted {
		t.Errorf("in-flight job restored as %s, want interrupted", queued.Status)
	}

	// The restart tooling: requeue and drain.
	ids, err := m2.RequeueInterrupted()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("requeued %d, want 1", len(ids))
	}
	if _, err := m2.Drain(); err != nil {
		t.Fatal(err)
	}
	redone, _ := m2.Job(ids[0])
	if redone.Status != StatusDone {
		t.Errorf("requeued job = %s (%s)", redone.Status, redone.Error)
	}
	// New IDs continue after the snapshot's counter.
	if ids[0] <= idQueued {
		t.Errorf("new job ID %d should exceed restored counter %d", ids[0], idQueued)
	}
}

func TestSaveSnapshotFile(t *testing.T) {
	m := newManager(35)
	id, _ := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 20, User: "ops"})
	m.Drain()

	path := filepath.Join(t.TempDir(), "qrm.snapshot.json")
	if err := m.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	// Atomicity: only the published file remains, no temp droppings.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "qrm.snapshot.json" {
		t.Fatalf("snapshot dir contents = %v, want just the snapshot", entries)
	}

	// Overwriting an existing snapshot works (the restart-then-shutdown
	// cycle) and the result restores.
	if err := m.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m2 := NewManager(qdmi.NewDevice(device.NewTwin20Q(35), nil))
	if err := m2.LoadSnapshot(f); err != nil {
		t.Fatal(err)
	}
	j, err := m2.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusDone {
		t.Errorf("restored job status = %s, want done", j.Status)
	}

	// A bad target directory surfaces as an error, not a silent no-op.
	if err := m.SaveSnapshotFile(filepath.Join(t.TempDir(), "missing", "deep", "x.json")); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestLoadSnapshotValidation(t *testing.T) {
	m := newManager(32)
	if err := m.LoadSnapshot(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON should fail")
	}
	if err := m.LoadSnapshot(strings.NewReader(`{"version":99,"jobs":[]}`)); err == nil {
		t.Error("unknown version should fail")
	}
	// Non-empty manager refuses to load.
	m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10})
	if err := m.LoadSnapshot(strings.NewReader(`{"version":1,"jobs":[]}`)); err == nil {
		t.Error("non-empty manager should refuse LoadSnapshot")
	}
	m2 := newManager(33)
	if err := m2.LoadSnapshot(strings.NewReader(`{"version":1,"jobs":[{}]}`)); err == nil {
		t.Error("malformed job should fail")
	}
}

func TestSnapshotPreservesHistoryOrder(t *testing.T) {
	m := newManager(34)
	for i := 0; i < 5; i++ {
		m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5, User: "u"})
	}
	m.Drain()
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(qdmi.NewDevice(device.NewTwin20Q(34), nil))
	if err := m2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	page, err := m2.History("u", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 5 {
		t.Fatalf("restored history total = %d", page.Total)
	}
	for i := 1; i < len(page.Jobs); i++ {
		if page.Jobs[i-1].ID <= page.Jobs[i].ID {
			t.Fatal("restored history not newest-first")
		}
	}
}
