// Package qrm is the Quantum Resource Manager of Fig. 2: the second-level
// scheduler that sits between the MQSS client and the device. It keeps a
// prioritized job queue, JIT-compiles each job against the device's live
// QDMI target at dispatch time, executes on the QPU, and maintains a
// paginated job history (the dashboard feature §4's FAQ process produced).
// Batch jobs — a §4 user request — group multiple circuits under one handle,
// and interrupted jobs can be requeued after an outage ("more robust job
// restart tools after system outages").
package qrm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/qdmi"
	"repro/internal/transpile"
)

// JobStatus tracks a quantum job through its lifecycle.
type JobStatus string

const (
	StatusQueued      JobStatus = "queued"
	StatusCompiling   JobStatus = "compiling"
	StatusRunning     JobStatus = "running"
	StatusDone        JobStatus = "done"
	StatusFailed      JobStatus = "failed"
	StatusInterrupted JobStatus = "interrupted" // outage while queued/running
	StatusCancelled   JobStatus = "cancelled"
)

// Request is a job submission.
type Request struct {
	Circuit  *circuit.Circuit `json:"circuit"`
	Shots    int              `json:"shots"`
	Priority int              `json:"priority"`
	// User identifies the submitter (for history filtering).
	User string `json:"user"`
	// BatchID groups circuits submitted together (0 = standalone).
	BatchID int `json:"batch_id,omitempty"`
	// Placement selects the JIT placement strategy; fidelity-aware is the
	// default.
	StaticPlacement bool `json:"static_placement,omitempty"`
}

// Job is the QRM's record of one submission.
type Job struct {
	ID      int       `json:"id"`
	Status  JobStatus `json:"status"`
	Request Request   `json:"request"`

	// Compilation artefacts, filled at dispatch.
	CompiledGates int              `json:"compiled_gates,omitempty"`
	CZCount       int              `json:"cz_count,omitempty"`
	Layout        transpile.Layout `json:"layout,omitempty"`
	// Transparency into compilation was an explicit user request (§4).
	CompileStats string `json:"compile_stats,omitempty"`

	// Results.
	Counts     map[int]int `json:"counts,omitempty"`
	DurationUs float64     `json:"duration_us,omitempty"`
	Error      string      `json:"error,omitempty"`

	SubmitTime float64 `json:"submit_time"`
	EndTime    float64 `json:"end_time,omitempty"`
}

// Manager is the QRM.
type Manager struct {
	mu sync.Mutex

	dev       *qdmi.Device
	nextID    int
	nextBatch int
	queue     []*Job
	jobs      map[int]*Job // all jobs ever, by ID
	order     []int        // submission order for pagination

	now    float64
	online bool
}

// NewManager builds a QRM over a QDMI device handle.
func NewManager(dev *qdmi.Device) *Manager {
	return &Manager{dev: dev, jobs: make(map[int]*Job), online: true}
}

// SetOnline marks the QPU available; taking it offline interrupts queued
// work (outage semantics, §3.5).
func (m *Manager) SetOnline(online bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.online && !online {
		for _, j := range m.queue {
			j.Status = StatusInterrupted
			j.EndTime = m.now
		}
		m.queue = m.queue[:0]
	}
	m.online = online
}

// Online reports availability.
func (m *Manager) Online() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.online
}

// SetTime sets the simulation clock used for job timestamps.
func (m *Manager) SetTime(t float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = t
}

// Submit enqueues one job and returns its ID.
func (m *Manager) Submit(req Request) (int, error) {
	if req.Circuit == nil {
		return 0, fmt.Errorf("qrm: request has no circuit")
	}
	if err := req.Circuit.Validate(); err != nil {
		return 0, fmt.Errorf("qrm: invalid circuit: %w", err)
	}
	if req.Shots < 1 {
		return 0, fmt.Errorf("qrm: shots must be >= 1, got %d", req.Shots)
	}
	if req.Circuit.NumQubits > m.dev.Properties().NumQubits {
		return 0, fmt.Errorf("qrm: circuit needs %d qubits, device has %d",
			req.Circuit.NumQubits, m.dev.Properties().NumQubits)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.online {
		return 0, fmt.Errorf("qrm: QPU offline (maintenance or outage)")
	}
	m.nextID++
	j := &Job{ID: m.nextID, Status: StatusQueued, Request: req, SubmitTime: m.now}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.queue = append(m.queue, j)
	return j.ID, nil
}

// SubmitBatch enqueues several circuits under one batch ID (a §4 user
// request). It returns the batch ID and per-circuit job IDs.
func (m *Manager) SubmitBatch(reqs []Request) (int, []int, error) {
	if len(reqs) == 0 {
		return 0, nil, fmt.Errorf("qrm: empty batch")
	}
	m.mu.Lock()
	m.nextBatch++
	batch := m.nextBatch
	m.mu.Unlock()
	ids := make([]int, 0, len(reqs))
	for i := range reqs {
		reqs[i].BatchID = batch
		id, err := m.Submit(reqs[i])
		if err != nil {
			return batch, ids, fmt.Errorf("qrm: batch item %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return batch, ids, nil
}

// Cancel cancels a queued job.
func (m *Manager) Cancel(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, j := range m.queue {
		if j.ID == id {
			j.Status = StatusCancelled
			j.EndTime = m.now
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("qrm: job %d not queued", id)
}

// PendingCount returns the queue length.
func (m *Manager) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Step dispatches and executes the highest-priority queued job, JIT-compiling
// it against the live QDMI target first. It returns the completed job, or
// nil if the queue is empty.
func (m *Manager) Step() (*Job, error) {
	m.mu.Lock()
	if !m.online {
		m.mu.Unlock()
		return nil, fmt.Errorf("qrm: QPU offline")
	}
	if len(m.queue) == 0 {
		m.mu.Unlock()
		return nil, nil
	}
	sort.SliceStable(m.queue, func(i, j int) bool {
		if m.queue[i].Request.Priority != m.queue[j].Request.Priority {
			return m.queue[i].Request.Priority > m.queue[j].Request.Priority
		}
		return m.queue[i].SubmitTime < m.queue[j].SubmitTime
	})
	j := m.queue[0]
	m.queue = m.queue[1:]
	j.Status = StatusCompiling
	m.mu.Unlock()

	placement := transpile.PlaceFidelityAware
	if j.Request.StaticPlacement {
		placement = transpile.PlaceStatic
	}
	// JIT compile against the *current* device state (Fig. 3 loop).
	res, err := transpile.Transpile(j.Request.Circuit, m.dev.Target(), transpile.Options{
		Placement: placement,
	})
	if err != nil {
		m.finish(j, nil, 0, fmt.Errorf("compile: %w", err))
		return j, nil
	}
	m.mu.Lock()
	j.CompiledGates = res.Stats.OutputGates
	j.CZCount = res.Stats.OutputCZ
	j.Layout = res.FinalLayout[:j.Request.Circuit.NumQubits]
	j.CompileStats = res.Stats.String()
	j.Status = StatusRunning
	m.mu.Unlock()

	out, err := m.dev.QPU().Execute(res.Circuit, j.Request.Shots)
	if err != nil {
		m.finish(j, nil, 0, fmt.Errorf("execute: %w", err))
		return j, nil
	}
	m.finish(j, out.Counts, out.DurationUs, nil)
	return j, nil
}

// Drain executes queued jobs until the queue is empty, returning how many
// jobs ran.
func (m *Manager) Drain() (int, error) {
	n := 0
	for {
		j, err := m.Step()
		if err != nil {
			return n, err
		}
		if j == nil {
			return n, nil
		}
		n++
	}
}

func (m *Manager) finish(j *Job, counts map[int]int, durUs float64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.EndTime = m.now
	if err != nil {
		j.Status = StatusFailed
		j.Error = err.Error()
		return
	}
	j.Status = StatusDone
	j.Counts = counts
	j.DurationUs = durUs
}

// Job returns a copy of the job record.
func (m *Manager) Job(id int) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("qrm: no job %d", id)
	}
	cp := *j
	return &cp, nil
}

// Page is a paginated slice of job history — §4: "many users found it
// difficult to navigate large job histories on the dashboard, which led us
// to implement more efficient pagination".
type Page struct {
	Jobs    []*Job `json:"jobs"`
	Total   int    `json:"total"`
	Offset  int    `json:"offset"`
	Limit   int    `json:"limit"`
	HasMore bool   `json:"has_more"`
}

// History returns a page of jobs (most recent first), optionally filtered
// by user.
func (m *Manager) History(user string, offset, limit int) (*Page, error) {
	if offset < 0 || limit < 1 {
		return nil, fmt.Errorf("qrm: bad pagination offset=%d limit=%d", offset, limit)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []int
	for i := len(m.order) - 1; i >= 0; i-- {
		j := m.jobs[m.order[i]]
		if user == "" || j.Request.User == user {
			ids = append(ids, j.ID)
		}
	}
	total := len(ids)
	if offset >= total {
		return &Page{Total: total, Offset: offset, Limit: limit}, nil
	}
	endIdx := offset + limit
	if endIdx > total {
		endIdx = total
	}
	page := &Page{Total: total, Offset: offset, Limit: limit, HasMore: endIdx < total}
	for _, id := range ids[offset:endIdx] {
		cp := *m.jobs[id]
		page.Jobs = append(page.Jobs, &cp)
	}
	return page, nil
}

// RequeueInterrupted resubmits every interrupted job (outage recovery
// tooling, §4) and returns the new job IDs.
func (m *Manager) RequeueInterrupted() ([]int, error) {
	m.mu.Lock()
	var interrupted []*Job
	for _, id := range m.order {
		if j := m.jobs[id]; j.Status == StatusInterrupted {
			interrupted = append(interrupted, j)
		}
	}
	m.mu.Unlock()
	ids := make([]int, 0, len(interrupted))
	for _, j := range interrupted {
		id, err := m.Submit(j.Request)
		if err != nil {
			return ids, fmt.Errorf("qrm: requeueing job %d: %w", j.ID, err)
		}
		m.mu.Lock()
		j.Status = StatusCancelled // superseded by the requeued copy
		m.mu.Unlock()
		ids = append(ids, id)
	}
	return ids, nil
}
