// Package qrm is the Quantum Resource Manager of Fig. 2: the second-level
// scheduler that sits between the MQSS client and the device. It keeps a
// prioritized job queue, JIT-compiles each job against the device's live
// QDMI target at dispatch time, executes on the QPU, and maintains a
// paginated job history (the dashboard feature §4's FAQ process produced).
// Batch jobs — a §4 user request — group multiple circuits under one handle,
// and interrupted jobs can be requeued after an outage ("more robust job
// restart tools after system outages").
//
// Dispatch runs in one of two modes. The synchronous mode (Step/Drain)
// executes one job at a time on the caller's goroutine — the tightly-coupled
// accelerator loop. The pipeline mode (Start/Stop, dispatch.go) runs a
// worker pool so JIT compilation and QPU round-trips for independent jobs
// overlap, with a transpile cache keyed on circuit fingerprint + calibration
// epoch deduplicating compilation across batch jobs with repeated circuits.
package qrm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/qdmi"
	"repro/internal/telemetry/trace"
	"repro/internal/tenant"
	"repro/internal/transpile"
)

// JobStatus tracks a quantum job through its lifecycle.
type JobStatus string

const (
	StatusQueued      JobStatus = "queued"
	StatusCompiling   JobStatus = "compiling"
	StatusRunning     JobStatus = "running"
	StatusDone        JobStatus = "done"
	StatusFailed      JobStatus = "failed"
	StatusInterrupted JobStatus = "interrupted" // outage while queued/running
	StatusCancelled   JobStatus = "cancelled"
)

// Request is a job submission.
type Request struct {
	Circuit  *circuit.Circuit `json:"circuit"`
	Shots    int              `json:"shots"`
	Priority int              `json:"priority"`
	// User identifies the submitter (for history filtering).
	User string `json:"user"`
	// BatchID groups circuits submitted together (0 = standalone).
	BatchID int `json:"batch_id,omitempty"`
	// DeadlineMs is a wall-clock dispatch budget in milliseconds from
	// submission: a job still queued when it expires is failed with
	// ErrDeadlineMsg instead of being dispatched (0 = no deadline). The
	// queue honors it at claim time, so an expired job never wastes a
	// compile or a QPU round-trip.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Placement selects the JIT placement strategy; fidelity-aware is the
	// default.
	StaticPlacement bool `json:"static_placement,omitempty"`
}

// Job is the QRM's record of one submission.
type Job struct {
	ID      int       `json:"id"`
	Status  JobStatus `json:"status"`
	Request Request   `json:"request"`

	// Compilation artefacts, filled at dispatch.
	CompiledGates int              `json:"compiled_gates,omitempty"`
	CZCount       int              `json:"cz_count,omitempty"`
	Layout        transpile.Layout `json:"layout,omitempty"`
	// Transparency into compilation was an explicit user request (§4).
	CompileStats string `json:"compile_stats,omitempty"`

	// Results.
	Counts     map[int]int `json:"counts,omitempty"`
	DurationUs float64     `json:"duration_us,omitempty"`
	Error      string      `json:"error,omitempty"`

	SubmitTime float64 `json:"submit_time"`
	EndTime    float64 `json:"end_time,omitempty"`

	// SubmitUnixMs is the wall-clock submission instant in Unix
	// milliseconds. It is excluded from the v1 wire shape; the durable job
	// store persists it alongside the record so dispatch deadlines keep
	// their original budget across a process restart.
	SubmitUnixMs int64 `json:"-"`
	// Recovered marks a job restored from the durable store after a
	// restart; the v2 API surfaces it so clients can tell a replayed job
	// from a fresh one.
	Recovered bool `json:"recovered,omitempty"`
	// Node is the federation ownership stamp: the node that minted this
	// job's ID and whose durable store is authoritative for it. Empty on
	// standalone deployments and in WAL records written before
	// federation existed — replay treats the missing field as "".
	Node string `json:"node,omitempty"`

	// done is closed when the job reaches a terminal status; WaitJob and
	// the streaming batch endpoints block on it. Copies made for callers
	// share the channel (it is reference-like), which is exactly right.
	done chan struct{}
	// submitWall is the wall-clock submission instant, used only for the
	// pipeline latency metrics; job records keep simulation time.
	submitWall time.Time
	// cancelReq marks a cancel requested while the job was in flight; the
	// dispatch pipeline honors it at the next stage boundary.
	cancelReq bool

	// tr is the job's span tree; span is the span this manager's pipeline
	// stages nest under (the trace root for directly-submitted jobs, the
	// fleet's per-device leg for observed submissions). trOwned marks
	// traces this manager created and therefore retains at terminal;
	// fleet-observed jobs leave retention to the scheduler. qwSpan covers
	// submit-to-claim. All nil when tracing is disabled; every use is
	// nil-safe.
	tr      *trace.Trace
	span    *trace.Span
	qwSpan  *trace.Span
	trOwned bool
}

// ErrDeadlineMsg is the error recorded on jobs that expired in the queue;
// API layers key the deadline_exceeded error code off it.
const ErrDeadlineMsg = "deadline exceeded before dispatch"

// ErrShedMsg is the error recorded on jobs shed by admission control when
// the queue crossed its configured bound; API layers key the retryable
// {code:"shed"} envelope off it. Shed jobs are accepted, counted, and
// terminated — never silently dropped — so conservation counters balance.
const ErrShedMsg = "shed: queue over admission high-water mark"

// expired reports whether the job's dispatch deadline has passed.
func (j *Job) expired() bool {
	return j.Request.DeadlineMs > 0 &&
		float64(time.Since(j.submitWall).Microseconds())/1000 > j.Request.DeadlineMs
}

// terminalStatus reports whether a status is final.
func terminalStatus(s JobStatus) bool {
	switch s {
	case StatusDone, StatusFailed, StatusInterrupted, StatusCancelled:
		return true
	}
	return false
}

// jobQueue is the priority heap behind the dispatch queue: highest priority
// first, then earliest submission time, then lowest ID (FIFO within a
// simulation instant). Claiming a job is O(log n) instead of re-sorting the
// whole queue under the manager lock on every pop.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.Request.Priority != b.Request.Priority {
		return a.Request.Priority > b.Request.Priority
	}
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}
func (q jobQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x interface{}) { *q = append(*q, x.(*Job)) }
func (q *jobQueue) Pop() interface{} {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// Manager is the QRM.
type Manager struct {
	mu   sync.Mutex
	cond *sync.Cond // signalled on submit, completion, stop, online flips

	dev       *qdmi.Device
	nextID    int
	idLimit   int // last mintable ID, inclusive (0 = unbounded; federation block end)
	nextBatch int
	nodeID    string // federation ownership stamp for new jobs ("" standalone)
	queue     fairQueue
	jobs      map[int]*Job // all jobs ever, by ID
	order     []int        // submission order for pagination

	// admission bounds the queue (zero values = unbounded, the default);
	// crossing a bound sheds the most sheddable queued job with ErrShedMsg.
	admission tenant.Admission

	now    float64
	online bool

	// Pipeline state (dispatch.go).
	workers  int
	stopping bool
	inflight int
	wg       sync.WaitGroup
	stopCh   chan struct{} // closed when the pipeline shuts down; unblocks WaitJob
	cache    *transpileCache
	gate     slotGate // optional QPU admission gate (hpc co-scheduling)
	metrics  metrics
	bus      *EventBus // lifecycle transitions for watch subscribers

	// Durable job store (nil = in-memory only). walTail is the LSN of the
	// most recent record this manager journaled; submit reads it under
	// m.mu and waits for durability after unlocking.
	store   JobStore
	walTail uint64

	// Trace retention: a FIFO of the last traceCap terminal job IDs whose
	// traces this manager owns. Eviction drops the job's trace reference;
	// in-flight snapshot readers keep evicted traces alive via their own
	// pointer, so no coordination beyond m.mu is needed.
	traceRing     []int
	traceCap      int
	traceSpanDrop uint64 // spans lost to slab exhaustion, summed at terminal
}

// slotGate is the admission interface the HPC co-scheduler's QPU gate
// satisfies (hpc.Gate); declared locally to keep qrm free of an hpc import.
type slotGate interface {
	Acquire()
	Release()
}

// JobStore is the durability boundary behind the manager (declared locally,
// like slotGate, to keep qrm free of a durable import): every lifecycle
// transition is journaled as an upsert of the job's full record, and Submit
// acks only after WaitDurable confirms its record reached stable storage.
// internal/durable's WAL-backed Store implements it.
type JobStore interface {
	JournalQRMJob(j *Job) (lsn uint64)
	WaitDurable(lsn uint64)
}

// NewManager builds a QRM over a QDMI device handle.
func NewManager(dev *qdmi.Device) *Manager {
	m := &Manager{
		dev:      dev,
		queue:    newFairQueue(),
		jobs:     make(map[int]*Job),
		online:   true,
		cache:    newTranspileCache(),
		bus:      NewEventBus(),
		traceCap: DefaultTraceRetention,
	}
	m.cond = sync.NewCond(&m.mu)
	m.metrics.init()
	return m
}

// Events returns the manager's job event bus. Subscriptions see every
// lifecycle transition (queued, compiling, running, terminal) as it happens.
func (m *Manager) Events() *EventBus { return m.bus }

// AttachStore installs the durable job store: every subsequent transition
// is journaled and Submit acks only after its record is durable. Pass nil
// to detach (the fault lab uses this to freeze a "dead" process's store).
// Attach before the first submission — replayed history comes in through
// Restore, not the journal.
func (m *Manager) AttachStore(st JobStore) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.store = st
}

// publishLocked emits a lifecycle event. Caller holds m.mu; the bus has its
// own lock and never calls back into the manager, so this cannot deadlock.
// With a store attached the transition is journaled first — the WAL is the
// authoritative copy of exactly the stream the bus publishes.
func (m *Manager) publishLocked(j *Job, from JobStatus, reason string) {
	if m.store != nil {
		m.walTail = m.store.JournalQRMJob(j)
	}
	m.bus.Publish(Event{
		JobID:  j.ID,
		From:   string(from),
		To:     string(j.Status),
		Device: m.dev.QPU().Name(),
		Reason: reason,
		Time:   m.now,
	})
}

// SetGate installs a QPU-slot admission gate (typically the HPC scheduler's
// hpc.Gate) that pipeline workers acquire around device execution, keeping
// the dispatch pipeline from oversubscribing the co-scheduled quantum
// resource. Pass nil to remove. Must be called before Start.
func (m *Manager) SetGate(g slotGate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gate = g
}

// SetOnline marks the QPU available; taking it offline interrupts queued
// work (outage semantics, §3.5). Jobs already claimed by pipeline workers
// run to completion — the control electronics finish the circuit in flight.
func (m *Manager) SetOnline(online bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.online && !online {
		for _, j := range m.queue.drain() {
			m.terminateLocked(j, StatusInterrupted)
			m.metrics.interrupted++
		}
	}
	m.online = online
	m.cond.Broadcast()
}

// terminateLocked moves a job to a terminal status exactly once, stamping
// the end time and releasing every WaitJob blocked on it. No-op when the
// job is already terminal.
func (m *Manager) terminateLocked(j *Job, s JobStatus) {
	if terminalStatus(j.Status) {
		return
	}
	from := j.Status
	j.Status = s
	j.EndTime = m.now
	// Per-tenant accounting: terminateLocked is the single terminal choke
	// point, so every outcome lands in exactly one tenant counter. Shed
	// jobs surface as StatusFailed but are accounted separately.
	ts := m.queue.stats(j.Request.User)
	switch s {
	case StatusDone:
		ts.Completed++
	case StatusFailed:
		if j.Error == ErrShedMsg {
			ts.Shed++
		} else {
			ts.Failed++
		}
	case StatusCancelled:
		ts.Cancelled++
	case StatusInterrupted:
		ts.Interrupted++
	}
	if j.done != nil {
		close(j.done)
	}
	// Close out the trace: queue-wait ends here for jobs that never reached
	// a worker (cancelled/expired/interrupted in the queue — End is
	// idempotent, so claimed jobs are unaffected), and the job's span gets
	// its outcome. Owned traces enter the retention ring.
	j.qwSpan.End()
	if j.Error != "" {
		j.span.End(trace.Str("outcome", string(s)), trace.Str("error", j.Error))
	} else {
		j.span.End(trace.Str("outcome", string(s)))
	}
	if j.trOwned && j.tr != nil {
		m.retainTraceLocked(j)
	}
	m.publishLocked(j, from, "")
}

// DefaultTraceRetention bounds how many terminal-job traces a manager
// keeps for GET /jobs/{id}/trace.
const DefaultTraceRetention = 256

// retainTraceLocked pushes a terminal job into the trace ring, evicting
// the oldest retained trace when full. Caller holds m.mu.
func (m *Manager) retainTraceLocked(j *Job) {
	m.traceSpanDrop += j.tr.Dropped()
	if m.traceCap < 1 {
		j.tr, j.span, j.qwSpan = nil, nil, nil
		return
	}
	if len(m.traceRing) >= m.traceCap {
		old := m.traceRing[0]
		m.traceRing = m.traceRing[1:]
		if oj, ok := m.jobs[old]; ok {
			oj.tr, oj.span, oj.qwSpan = nil, nil, nil
		}
	}
	m.traceRing = append(m.traceRing, j.ID)
}

// SetTraceRetention resizes the terminal-trace ring (0 disables retention).
// Shrinking evicts oldest-first immediately.
func (m *Manager) SetTraceRetention(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traceCap = n
	for len(m.traceRing) > n {
		old := m.traceRing[0]
		m.traceRing = m.traceRing[1:]
		if oj, ok := m.jobs[old]; ok {
			oj.tr, oj.span, oj.qwSpan = nil, nil, nil
		}
	}
}

// Trace returns the job's span tree, or nil when the job is unknown, was
// never traced, or its trace has been evicted from the retention ring.
// The returned trace is safe to snapshot concurrently with eviction.
func (m *Manager) Trace(id int) *trace.Trace {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j.tr
	}
	return nil
}

// TraceStats reports retained-trace count and total spans lost to per-job
// slab exhaustion across terminal jobs — the /metrics gauges.
func (m *Manager) TraceStats() (retained int, spanDrops uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.traceRing), m.traceSpanDrop
}

// Online reports availability.
func (m *Manager) Online() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.online
}

// SetTime sets the simulation clock used for job timestamps.
func (m *Manager) SetTime(t float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = t
}

// SetIDBase raises the ID counter so every future job ID is > base.
// Federated deployments partition the global ID space between nodes
// this way; the call composes with Restore, which also only ever raises
// the counter, so replaying an old WAL can never re-mint an ID.
func (m *Manager) SetIDBase(base int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if base > m.nextID {
		m.nextID = base
	}
}

// SetIDLimit caps the ID counter: submissions are refused once every ID
// up to limit (inclusive) has been minted. Federated deployments set it
// to the end of this node's ID block — spilling past it would land IDs
// in the next member's block and silently misroute owner lookups, so
// exhaustion is a hard refusal, not a wrap. Zero means unbounded.
func (m *Manager) SetIDLimit(limit int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.idLimit = limit
}

// SetNodeID stamps every future job record with the owning federation
// node. Empty (the default) means standalone.
func (m *Manager) SetNodeID(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodeID = id
}

// Submit enqueues one job and returns its ID. The job gets its own trace
// (retained at terminal in the manager's ring); layers that already carry
// a trace — the fleet scheduler — use SubmitObserved instead.
func (m *Manager) Submit(req Request) (int, error) {
	return m.submit(req, nil)
}

// SubmitObserved enqueues one job whose pipeline spans (queue-wait,
// compile, execute) nest under parent instead of a fresh trace root. The
// caller owns the trace's retention; this manager only appends to it.
func (m *Manager) SubmitObserved(req Request, parent *trace.Span) (int, error) {
	return m.submit(req, parent)
}

func (m *Manager) submit(req Request, parent *trace.Span) (int, error) {
	if req.Circuit == nil {
		return 0, fmt.Errorf("qrm: request has no circuit")
	}
	if err := req.Circuit.Validate(); err != nil {
		return 0, fmt.Errorf("qrm: invalid circuit: %w", err)
	}
	if req.Shots < 1 {
		return 0, fmt.Errorf("qrm: shots must be >= 1, got %d", req.Shots)
	}
	if req.Circuit.NumQubits > m.dev.Properties().NumQubits {
		return 0, fmt.Errorf("qrm: circuit needs %d qubits, device has %d",
			req.Circuit.NumQubits, m.dev.Properties().NumQubits)
	}
	m.mu.Lock()
	if !m.online {
		m.mu.Unlock()
		return 0, fmt.Errorf("qrm: QPU offline (maintenance or outage)")
	}
	if m.idLimit > 0 && m.nextID >= m.idLimit {
		m.mu.Unlock()
		return 0, fmt.Errorf("qrm: job-ID space exhausted: this node's federation ID block ends at %d; minting past it would misroute owner lookups", m.idLimit)
	}
	m.nextID++
	now := time.Now()
	j := &Job{
		ID: m.nextID, Status: StatusQueued, Request: req, SubmitTime: m.now,
		done: make(chan struct{}), submitWall: now, SubmitUnixMs: now.UnixMilli(),
		Node: m.nodeID,
	}
	if parent != nil {
		j.tr, j.span = parent.Trace(), parent
	} else {
		j.tr = trace.New("job",
			trace.Int("job_id", j.ID), trace.Str("user", req.User))
		j.span = j.tr.Root()
		j.trOwned = j.tr != nil
	}
	j.qwSpan = j.span.StartChild("queue-wait")
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.queue.push(j)
	m.metrics.submitted++
	m.queue.stats(req.User).Submitted++
	m.metrics.observeQueueDepth(m.queue.Len())
	m.publishLocked(j, "", "")
	m.shedOverLimitLocked(req.User)
	m.cond.Broadcast()
	st, lsn := m.store, m.walTail
	m.mu.Unlock()
	if st != nil {
		// Ack-after-durable: the ID is not returned until the submit record
		// is on stable storage, so a 202 implies the job survives kill -9.
		// Waiting happens outside m.mu — group commit batches concurrent
		// submitters behind one fsync without serializing the pipeline.
		st.WaitDurable(lsn)
	}
	return j.ID, nil
}

// SubmitBatch enqueues several circuits under one batch ID (a §4 user
// request). It returns the batch ID and per-circuit job IDs.
func (m *Manager) SubmitBatch(reqs []Request) (int, []int, error) {
	if len(reqs) == 0 {
		return 0, nil, fmt.Errorf("qrm: empty batch")
	}
	m.mu.Lock()
	m.nextBatch++
	batch := m.nextBatch
	m.mu.Unlock()
	ids := make([]int, 0, len(reqs))
	for i := range reqs {
		reqs[i].BatchID = batch
		id, err := m.Submit(reqs[i])
		if err != nil {
			return batch, ids, fmt.Errorf("qrm: batch item %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return batch, ids, nil
}

// Cancel cancels a job. A still-queued job is cancelled immediately; a job
// already claimed by a dispatch worker (compiling or running) has the
// cancellation *requested* — the pipeline honors it at the next stage
// boundary (before the QPU round-trip, or when recording the result), so
// Cancel returning nil means the job will terminate cancelled, not that it
// already has. Terminal and unknown jobs return an error.
func (m *Manager) Cancel(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("qrm: no job %d", id)
	}
	if terminalStatus(j.Status) {
		return fmt.Errorf("qrm: job %d already %s", id, j.Status)
	}
	if m.queue.remove(id) != nil {
		m.terminateLocked(j, StatusCancelled)
		m.metrics.cancelled++
		m.cond.Broadcast() // the queue may now be idle; wake WaitIdle
		return nil
	}
	// In flight: flag it for the worker. The event lets watchers see the
	// request even though the status has not changed yet.
	j.cancelReq = true
	m.publishLocked(j, j.Status, "cancel-requested")
	return nil
}

// PendingCount returns the queue length.
func (m *Manager) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queue.Len()
}

// SetAdmission installs queue-depth bounds (tenant.Admission zero values
// disable each bound). Applies to subsequent submissions; an already-full
// queue is not retroactively shed.
func (m *Manager) SetAdmission(a tenant.Admission) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admission = a
}

// Admission returns the configured queue bounds.
func (m *Manager) Admission() tenant.Admission {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.admission
}

// TenantUsage snapshots per-tenant queue accounting, sorted by user.
func (m *Manager) TenantUsage() []tenant.Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queue.usage()
}

// shedOverLimitLocked enforces the admission bounds after a push: first
// the submitting tenant's own depth cap, then the global high-water mark.
// Victims are the most sheddable queued jobs (lowest priority, newest) —
// possibly the job just submitted. Caller holds m.mu.
func (m *Manager) shedOverLimitLocked(user string) {
	a := m.admission
	if a.MaxTenantQueue > 0 {
		for m.queue.depth(user) > a.MaxTenantQueue {
			m.shedLocked(m.queue.worstOf(user))
		}
	}
	if a.HighWater > 0 {
		for m.queue.Len() > a.HighWater {
			m.shedLocked(m.queue.worst())
		}
	}
}

// shedLocked terminates one queued job with the retryable shed error.
// The job stays in history and its terminal event publishes normally, so
// waiters and watch streams see it fail loudly rather than vanish.
func (m *Manager) shedLocked(j *Job) {
	if j == nil {
		return
	}
	m.queue.remove(j.ID)
	j.Error = ErrShedMsg
	m.terminateLocked(j, StatusFailed)
	m.metrics.shed++
	m.cond.Broadcast() // the queue may now be idle; wake WaitIdle
}

// claimLocked pops queued jobs until it finds a dispatchable one, failing
// expired jobs on the way out of the heap — deadlines are enforced at claim
// time so a stale job never occupies a worker. Returns nil when the queue
// drained to empty. Caller holds m.mu.
func (m *Manager) claimLocked() *Job {
	now := time.Now()
	for m.queue.Len() > 0 {
		j := m.queue.pop(now)
		if j.expired() {
			j.Error = ErrDeadlineMsg
			m.terminateLocked(j, StatusFailed)
			m.metrics.expired++
			m.metrics.failed++
			m.cond.Broadcast() // the queue may now be idle; wake WaitIdle
			continue
		}
		j.Status = StatusCompiling
		j.qwSpan.End()
		m.metrics.queueWait.Observe(float64(time.Since(j.submitWall).Microseconds()) / 1000)
		m.publishLocked(j, StatusQueued, "")
		return j
	}
	return nil
}

// Step dispatches and executes the highest-priority queued job, JIT-compiling
// it against the live QDMI target first. It returns the completed job, or
// nil if the queue is empty. Step is the synchronous mode; while the worker
// pipeline is running it returns an error (use WaitJob instead).
func (m *Manager) Step() (*Job, error) {
	m.mu.Lock()
	for m.stopping && m.workers > 0 {
		// A Stop is draining the pool; wait it out so callers falling back
		// to synchronous dispatch don't get a spurious error.
		m.cond.Wait()
	}
	if m.workers > 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("qrm: pipeline running; submit and WaitJob instead of Step")
	}
	if !m.online {
		m.mu.Unlock()
		return nil, fmt.Errorf("qrm: QPU offline")
	}
	j := m.claimLocked()
	if j == nil {
		m.mu.Unlock()
		return nil, nil
	}
	m.mu.Unlock()

	m.dispatchOne(j)
	return j, nil
}

// Drain executes queued jobs until the queue is empty, returning how many
// jobs ran. Synchronous mode only; with the pipeline running use WaitIdle.
func (m *Manager) Drain() (int, error) {
	n := 0
	for {
		j, err := m.Step()
		if err != nil {
			return n, err
		}
		if j == nil {
			return n, nil
		}
		n++
	}
}

func (m *Manager) finish(j *Job, counts map[int]int, durUs float64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.cancelReq {
		// A cancel raced the dispatch: the request wins, whatever the device
		// produced. Discarding the result is what cancellation means.
		m.terminateLocked(j, StatusCancelled)
		m.metrics.cancelled++
		return
	}
	if err != nil {
		j.Error = err.Error()
		m.terminateLocked(j, StatusFailed)
		m.metrics.failed++
		return
	}
	j.Counts = counts
	j.DurationUs = durUs
	m.terminateLocked(j, StatusDone)
	m.metrics.completed++
	m.metrics.e2e.Observe(float64(time.Since(j.submitWall).Microseconds()) / 1000)
}

// Job returns a copy of the job record.
func (m *Manager) Job(id int) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("qrm: no job %d", id)
	}
	cp := *j
	return &cp, nil
}

// Page is a paginated slice of job history — §4: "many users found it
// difficult to navigate large job histories on the dashboard, which led us
// to implement more efficient pagination".
type Page struct {
	Jobs    []*Job `json:"jobs"`
	Total   int    `json:"total"`
	Offset  int    `json:"offset"`
	Limit   int    `json:"limit"`
	HasMore bool   `json:"has_more"`
}

// History returns a page of jobs (most recent first), optionally filtered
// by user.
func (m *Manager) History(user string, offset, limit int) (*Page, error) {
	if offset < 0 || limit < 1 {
		return nil, fmt.Errorf("qrm: bad pagination offset=%d limit=%d", offset, limit)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []int
	for i := len(m.order) - 1; i >= 0; i-- {
		j := m.jobs[m.order[i]]
		if user == "" || j.Request.User == user {
			ids = append(ids, j.ID)
		}
	}
	total := len(ids)
	if offset >= total {
		return &Page{Total: total, Offset: offset, Limit: limit}, nil
	}
	endIdx := offset + limit
	if endIdx > total {
		endIdx = total
	}
	page := &Page{Total: total, Offset: offset, Limit: limit, HasMore: endIdx < total}
	for _, id := range ids[offset:endIdx] {
		cp := *m.jobs[id]
		page.Jobs = append(page.Jobs, &cp)
	}
	return page, nil
}

// ListJobs returns up to limit job copies with ID strictly below beforeID
// (0 = start from the newest), newest first, filtered by user ("" = any)
// and status set (nil = any) — the cursor primitive behind the v2 paginated
// listing: the caller threads the last returned ID back in as beforeID.
// more reports whether older matching jobs remain.
func (m *Manager) ListJobs(user string, states map[JobStatus]bool, beforeID, limit int) (jobs []*Job, more bool) {
	if limit < 1 {
		limit = 20
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.order) - 1; i >= 0; i-- {
		j := m.jobs[m.order[i]]
		if beforeID > 0 && j.ID >= beforeID {
			continue
		}
		if user != "" && j.Request.User != user {
			continue
		}
		if states != nil && !states[j.Status] {
			continue
		}
		if len(jobs) == limit {
			return jobs, true
		}
		cp := *j
		jobs = append(jobs, &cp)
	}
	return jobs, false
}

// RequeueInterrupted resubmits every interrupted job (outage recovery
// tooling, §4) and returns the new job IDs.
func (m *Manager) RequeueInterrupted() ([]int, error) {
	m.mu.Lock()
	var interrupted []*Job
	for _, id := range m.order {
		if j := m.jobs[id]; j.Status == StatusInterrupted {
			interrupted = append(interrupted, j)
		}
	}
	m.mu.Unlock()
	ids := make([]int, 0, len(interrupted))
	for _, j := range interrupted {
		id, err := m.Submit(j.Request)
		if err != nil {
			return ids, fmt.Errorf("qrm: requeueing job %d: %w", j.ID, err)
		}
		m.mu.Lock()
		j.Status = StatusCancelled // superseded by the requeued copy
		m.mu.Unlock()
		ids = append(ids, id)
	}
	return ids, nil
}
