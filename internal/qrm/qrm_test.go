package qrm

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
)

func newManager(seed int64) *Manager {
	return NewManager(qdmi.NewDevice(device.NewTwin20Q(seed), nil))
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(1)
	if _, err := m.Submit(Request{Shots: 10}); err == nil {
		t.Error("expected error for nil circuit")
	}
	if _, err := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 0}); err == nil {
		t.Error("expected error for 0 shots")
	}
	if _, err := m.Submit(Request{Circuit: circuit.GHZ(25), Shots: 10}); err == nil {
		t.Error("expected error for oversized circuit")
	}
	bad := circuit.New(2, "bad")
	bad.Gates = append(bad.Gates, circuit.Gate{Name: "bogus", Qubits: []int{0}})
	if _, err := m.Submit(Request{Circuit: bad, Shots: 10}); err == nil {
		t.Error("expected error for invalid circuit")
	}
}

func TestSubmitStepDone(t *testing.T) {
	m := newManager(2)
	id, err := m.Submit(Request{Circuit: circuit.GHZ(4), Shots: 200, User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if m.PendingCount() != 1 {
		t.Error("queue should hold 1 job")
	}
	j, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if j == nil || j.ID != id {
		t.Fatalf("step returned %+v", j)
	}
	if j.Status != StatusDone {
		t.Fatalf("status = %s, error = %s", j.Status, j.Error)
	}
	if j.CompiledGates == 0 || j.CZCount == 0 || j.CompileStats == "" {
		t.Error("compilation transparency fields not populated")
	}
	total := 0
	for _, c := range j.Counts {
		total += c
	}
	if total != 200 {
		t.Errorf("counts total = %d, want 200", total)
	}
	if j.DurationUs <= 0 {
		t.Error("duration not recorded")
	}
	// On the noiseless twin a GHZ gives exactly 2 outcomes.
	if len(j.Counts) != 2 {
		t.Errorf("twin GHZ outcomes = %d, want 2", len(j.Counts))
	}
}

func TestStepEmptyQueue(t *testing.T) {
	m := newManager(3)
	j, err := m.Step()
	if err != nil || j != nil {
		t.Errorf("empty queue step = %v, %v", j, err)
	}
}

func TestPriorityDispatchOrder(t *testing.T) {
	m := newManager(4)
	idLow, _ := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10, Priority: 0})
	idHigh, _ := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10, Priority: 9})
	first, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != idHigh {
		t.Errorf("first dispatched = %d, want high-priority %d", first.ID, idHigh)
	}
	second, _ := m.Step()
	if second.ID != idLow {
		t.Errorf("second dispatched = %d, want %d", second.ID, idLow)
	}
}

func TestDrain(t *testing.T) {
	m := newManager(5)
	for i := 0; i < 5; i++ {
		m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 20})
	}
	n, err := m.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("drained %d, want 5", n)
	}
	if m.PendingCount() != 0 {
		t.Error("queue not empty after drain")
	}
}

func TestBatchSubmission(t *testing.T) {
	m := newManager(6)
	reqs := []Request{
		{Circuit: circuit.GHZ(2), Shots: 10, User: "bob"},
		{Circuit: circuit.GHZ(3), Shots: 10, User: "bob"},
		{Circuit: circuit.GHZ(4), Shots: 10, User: "bob"},
	}
	batch, ids, err := m.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if batch == 0 || len(ids) != 3 {
		t.Fatalf("batch = %d, ids = %v", batch, ids)
	}
	for _, id := range ids {
		j, err := m.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Request.BatchID != batch {
			t.Errorf("job %d batch = %d, want %d", id, j.Request.BatchID, batch)
		}
	}
	if _, _, err := m.SubmitBatch(nil); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestCancel(t *testing.T) {
	m := newManager(7)
	id, _ := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10})
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Job(id)
	if j.Status != StatusCancelled {
		t.Errorf("status = %s", j.Status)
	}
	if err := m.Cancel(id); err == nil {
		t.Error("double cancel should fail")
	}
}

func TestHistoryPagination(t *testing.T) {
	m := newManager(8)
	for i := 0; i < 25; i++ {
		user := "alice"
		if i%2 == 1 {
			user = "bob"
		}
		m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 5, User: user})
	}
	m.Drain()
	page, err := m.History("", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 25 || len(page.Jobs) != 10 || !page.HasMore {
		t.Errorf("page = total %d, len %d, more %v", page.Total, len(page.Jobs), page.HasMore)
	}
	// Most recent first.
	if page.Jobs[0].ID <= page.Jobs[1].ID {
		t.Error("history not newest-first")
	}
	last, err := m.History("", 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(last.Jobs) != 5 || last.HasMore {
		t.Errorf("last page = len %d, more %v", len(last.Jobs), last.HasMore)
	}
	alice, err := m.History("alice", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if alice.Total != 13 {
		t.Errorf("alice jobs = %d, want 13", alice.Total)
	}
	beyond, err := m.History("", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(beyond.Jobs) != 0 {
		t.Error("page beyond end should be empty")
	}
	if _, err := m.History("", -1, 10); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := m.History("", 0, 0); err == nil {
		t.Error("zero limit should fail")
	}
}

func TestOutageInterruptsAndRequeues(t *testing.T) {
	m := newManager(9)
	id1, _ := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 50, User: "carol"})
	id2, _ := m.Submit(Request{Circuit: circuit.GHZ(4), Shots: 50, User: "carol"})
	m.SetOnline(false)
	j1, _ := m.Job(id1)
	j2, _ := m.Job(id2)
	if j1.Status != StatusInterrupted || j2.Status != StatusInterrupted {
		t.Fatalf("statuses = %s, %s; want interrupted", j1.Status, j2.Status)
	}
	if _, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10}); err == nil {
		t.Error("submit during outage should fail")
	}
	if _, err := m.Step(); err == nil {
		t.Error("step during outage should fail")
	}
	m.SetOnline(true)
	ids, err := m.RequeueInterrupted()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("requeued %d, want 2", len(ids))
	}
	n, err := m.Drain()
	if err != nil || n != 2 {
		t.Fatalf("drained %d, err %v", n, err)
	}
	for _, id := range ids {
		j, _ := m.Job(id)
		if j.Status != StatusDone {
			t.Errorf("requeued job %d = %s", id, j.Status)
		}
	}
}

func TestJITCompilationSeesLiveCalibration(t *testing.T) {
	// On a noisy device with a poisoned qubit, the default fidelity-aware
	// dispatch should avoid it; with StaticPlacement it cannot.
	qpu := device.New20Q(10)
	m := NewManager(qdmi.NewDevice(qpu, nil))
	qpu.AdvanceDrift(24 * 30)
	idJIT, _ := m.Submit(Request{Circuit: circuit.GHZ(4), Shots: 10})
	idStatic, _ := m.Submit(Request{Circuit: circuit.GHZ(4), Shots: 10, StaticPlacement: true})
	m.Drain()
	jJIT, _ := m.Job(idJIT)
	jStatic, _ := m.Job(idStatic)
	if jJIT.Status != StatusDone || jStatic.Status != StatusDone {
		t.Fatalf("statuses: %s / %s", jJIT.Status, jStatic.Status)
	}
	// Static placement is the identity layout.
	for i, p := range jStatic.Layout {
		if i != p {
			t.Errorf("static layout[%d] = %d", i, p)
		}
	}
}

func TestJobLookupError(t *testing.T) {
	m := newManager(11)
	if _, err := m.Job(404); err == nil {
		t.Error("expected error for unknown job")
	}
}

// TestSetIDLimitRefusesAtBlockEnd pins the federation ID-stride
// spillover guard: once every ID up to the limit has been minted,
// submission is refused instead of silently minting into the next
// member's block (which would misroute owner lookups fleet-wide).
func TestSetIDLimitRefusesAtBlockEnd(t *testing.T) {
	m := newManager(3)
	m.SetIDBase(40)
	m.SetIDLimit(42) // block (40, 42]: exactly two mintable IDs
	for want := 41; want <= 42; want++ {
		id, err := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 1, User: "cap"})
		if err != nil {
			t.Fatalf("submit inside the block: %v", err)
		}
		if id != want {
			t.Fatalf("minted id %d, want %d", id, want)
		}
	}
	if _, err := m.Submit(Request{Circuit: circuit.GHZ(3), Shots: 1, User: "cap"}); err == nil || !strings.Contains(err.Error(), "job-ID space exhausted") {
		t.Fatalf("submit past the block end: err = %v, want job-ID space exhausted", err)
	}
}
