package qrm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/telemetry/trace"
)

// This file is the WAL-replay half of crash durability (persist.go is the
// graceful-shutdown half): Restore rebuilds a freshly-constructed manager
// from the job records the durable store recovered, keeping original job
// IDs so idempotency-key replay and v2 watch re-attachment keep working
// across the restart.

// ErrInterruptedMsg is the error recorded on jobs whose dispatch deadline
// passed while the process was down; the v2 API keys the retryable
// {code:"interrupted"} envelope off it.
const ErrInterruptedMsg = "interrupted by restart: dispatch deadline passed during recovery"

// RestoreStats reports what Restore did with the recovered records.
type RestoreStats struct {
	// Terminal jobs re-entered history untouched.
	Terminal int
	// Requeued jobs (queued, compiling, or running at crash time) re-entered
	// the dispatch queue under their original IDs.
	Requeued int
	// Expired jobs were past their dispatch deadline and terminated as
	// interrupted instead of being requeued.
	Expired int
}

// Restore loads recovered job records into an empty manager. Terminal jobs
// become history; anything the crash caught mid-flight (queued, compiling,
// running) is re-queued under its *original* ID — at-least-once semantics:
// a job whose terminal record missed its fsync runs again rather than
// disappearing. Jobs past their dispatch deadline terminate as interrupted
// with a retryable error instead. Every restored job is marked Recovered
// and republished (reason "recovered") so re-attached watch streams and the
// fresh WAL segment both see the post-restart state.
func (m *Manager) Restore(jobs []*Job) (RestoreStats, error) {
	var stats RestoreStats
	sorted := make([]*Job, len(jobs))
	copy(sorted, jobs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.jobs) > 0 {
		return stats, fmt.Errorf("qrm: restore into a non-empty manager (%d jobs present)", len(m.jobs))
	}
	for _, src := range sorted {
		if src == nil || src.ID <= 0 {
			continue
		}
		cp := *src
		j := &cp
		j.done = make(chan struct{})
		j.Recovered = true
		if j.SubmitUnixMs > 0 {
			j.submitWall = time.UnixMilli(j.SubmitUnixMs)
		} else {
			j.submitWall = time.Now()
			j.SubmitUnixMs = j.submitWall.UnixMilli()
		}
		// The pre-crash trace died with the process; give requeued jobs a
		// fresh one so the pipeline spans have somewhere to land.
		j.tr, j.span, j.qwSpan, j.trOwned = nil, nil, nil, false

		if j.ID > m.nextID {
			m.nextID = j.ID
		}
		if j.Request.BatchID > m.nextBatch {
			m.nextBatch = j.Request.BatchID
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)

		if terminalStatus(j.Status) {
			close(j.done)
			stats.Terminal++
			continue
		}

		from := j.Status
		// Whatever stage the crash caught it in, the work restarts from the
		// queue: compile artefacts and partial results are stale.
		j.Status = StatusQueued
		j.CompiledGates, j.CZCount, j.Layout, j.CompileStats = 0, 0, nil, ""
		j.Counts, j.DurationUs, j.Error = nil, 0, ""
		if j.expired() {
			j.Error = ErrInterruptedMsg
			j.Status = StatusInterrupted
			j.EndTime = m.now
			close(j.done)
			m.metrics.interrupted++
			m.queue.stats(j.Request.User).Interrupted++
			m.publishLocked(j, from, "recovered")
			stats.Expired++
			continue
		}
		j.tr = trace.New("job",
			trace.Int("job_id", j.ID), trace.Str("user", j.Request.User))
		j.span = j.tr.Root()
		j.trOwned = j.tr != nil
		j.qwSpan = j.span.StartChild("queue-wait")
		// Re-queue through the fair queue so per-tenant accounting (depth,
		// submitted) is rebuilt from the WAL exactly as live submissions
		// would have built it.
		m.queue.push(j)
		m.metrics.submitted++
		m.queue.stats(j.Request.User).Submitted++
		m.metrics.observeQueueDepth(m.queue.Len())
		m.publishLocked(j, from, "recovered")
		stats.Requeued++
	}
	m.cond.Broadcast()
	return stats, nil
}
