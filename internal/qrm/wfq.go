package qrm

import (
	"container/heap"
	"sort"
	"time"

	"repro/internal/tenant"
)

// This file is the weighted-fair dispatch queue: instead of one global
// priority heap that a hot tenant can flood, each tenant keeps its own
// priority heap and claims are arbitrated by virtual-time WFQ. Every
// claim advances the claiming tenant's virtual finish time by one slot
// (equal weights), so a tenant with a thousand queued jobs and a tenant
// with one alternate instead of the flood winning a thousand times.
// Priority still matters across tenants — a head job's priority buys its
// tenant a bounded head start — and priority *aging* (effective priority
// grows with queue wait) guarantees a best-effort tenant is never locked
// out by a deadline-heavy one: wait long enough and its key always wins.

const (
	// wfqPrioWeight converts one priority level into virtual-time units of
	// head start. One unit = one claim slot, so priority p jumps at most
	// p*wfqPrioWeight claims ahead — bounded, not absolute, precedence.
	wfqPrioWeight = 0.25
	// wfqAgingMs is the queue wait that buys one effective priority level.
	wfqAgingMs = 250.0
)

// tenantQueue is one tenant's slice of the dispatch queue plus its
// lifetime accounting (kept after the queue drains; rebuilt by Restore).
type tenantQueue struct {
	user    string
	q       jobQueue
	vfinish float64 // virtual finish time of this tenant's last claim
	stats   tenant.Usage
}

// fairQueue is the multi-tenant dispatch queue behind Manager.queue.
// All methods require the manager lock.
type fairQueue struct {
	tenants map[string]*tenantQueue
	size    int
	vclock  float64 // global virtual time: advances with every claim
}

func newFairQueue() fairQueue {
	return fairQueue{tenants: map[string]*tenantQueue{}}
}

func (f *fairQueue) Len() int { return f.size }

func (f *fairQueue) get(user string) *tenantQueue {
	t, ok := f.tenants[user]
	if !ok {
		t = &tenantQueue{user: user}
		f.tenants[user] = t
	}
	return t
}

// stats returns the tenant's mutable accounting row, creating it on first
// touch so counters survive queue drains.
func (f *fairQueue) stats(user string) *tenant.Usage {
	return &f.get(user).stats
}

func (f *fairQueue) push(j *Job) {
	heap.Push(&f.get(j.Request.User).q, j)
	f.size++
}

// depth is one tenant's current queue length.
func (f *fairQueue) depth(user string) int {
	if t, ok := f.tenants[user]; ok {
		return t.q.Len()
	}
	return 0
}

// claimKey ranks a tenant for the next claim: lower wins. The base is the
// tenant's virtual start time (its WFQ turn); the head job's effective
// priority — submitted priority plus one level per wfqAgingMs of queue
// wait — buys a bounded head start.
func (f *fairQueue) claimKey(t *tenantQueue, now time.Time) float64 {
	start := t.vfinish
	if f.vclock > start {
		start = f.vclock
	}
	head := t.q[0]
	eff := float64(head.Request.Priority)
	if wait := now.Sub(head.submitWall); wait > 0 {
		eff += float64(wait.Milliseconds()) / wfqAgingMs
	}
	return start - wfqPrioWeight*eff
}

// headLess is the single-queue ordering (priority desc, submit asc, ID
// asc), used as the deterministic tie-break between equal claim keys.
func headLess(a, b *Job) bool {
	if a.Request.Priority != b.Request.Priority {
		return a.Request.Priority > b.Request.Priority
	}
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// pop claims the next job under WFQ and advances the virtual clocks.
// Returns nil when the queue is empty.
func (f *fairQueue) pop(now time.Time) *Job {
	var best *tenantQueue
	var bestKey float64
	for _, t := range f.tenants {
		if t.q.Len() == 0 {
			continue
		}
		key := f.claimKey(t, now)
		if best == nil || key < bestKey ||
			(key == bestKey && headLess(t.q[0], best.q[0])) {
			best, bestKey = t, key
		}
	}
	if best == nil {
		return nil
	}
	j := heap.Pop(&best.q).(*Job)
	start := best.vfinish
	if f.vclock > start {
		start = f.vclock
	}
	best.vfinish = start + 1 // equal weights: one claim = one virtual slot
	f.vclock = start
	f.size--
	return j
}

// remove pulls a specific queued job out (cancellation). Returns nil when
// the job is not queued.
func (f *fairQueue) remove(id int) *Job {
	for _, t := range f.tenants {
		for i, j := range t.q {
			if j.ID == id {
				heap.Remove(&t.q, i)
				f.size--
				return j
			}
		}
	}
	return nil
}

// drain empties every tenant queue and returns the jobs in ID order
// (outage semantics: deterministic interruption order).
func (f *fairQueue) drain() []*Job {
	var out []*Job
	for _, t := range f.tenants {
		out = append(out, t.q...)
		t.q = t.q[:0]
	}
	f.size = 0
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// shedWorse orders jobs by shedding preference: lowest priority first,
// then newest submission, then highest ID — the exact inverse of the
// claim order, so shedding always evicts what would run last.
func shedWorse(a, b *Job) bool {
	if a.Request.Priority != b.Request.Priority {
		return a.Request.Priority < b.Request.Priority
	}
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime > b.SubmitTime
	}
	return a.ID > b.ID
}

// worst returns the globally most sheddable queued job (nil when empty).
func (f *fairQueue) worst() *Job {
	var w *Job
	for _, t := range f.tenants {
		for _, j := range t.q {
			if w == nil || shedWorse(j, w) {
				w = j
			}
		}
	}
	return w
}

// worstOf returns one tenant's most sheddable queued job (nil when empty).
func (f *fairQueue) worstOf(user string) *Job {
	t, ok := f.tenants[user]
	if !ok {
		return nil
	}
	var w *Job
	for _, j := range t.q {
		if w == nil || shedWorse(j, w) {
			w = j
		}
	}
	return w
}

// usage snapshots every tenant's accounting row, sorted by user.
func (f *fairQueue) usage() []tenant.Usage {
	out := make([]tenant.Usage, 0, len(f.tenants))
	for _, t := range f.tenants {
		u := t.stats
		u.User = t.user
		u.Queued = t.q.Len()
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}
