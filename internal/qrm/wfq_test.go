package qrm

import (
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/tenant"
)

// mkJob builds a queued job directly for fairQueue unit tests.
func mkJob(id int, user string, prio int, wall time.Time) *Job {
	return &Job{
		ID:         id,
		Status:     StatusQueued,
		Request:    Request{User: user, Priority: prio},
		SubmitTime: float64(id), // submission order for tie-breaks
		submitWall: wall,
	}
}

func TestFairQueueInterleavesTenants(t *testing.T) {
	f := newFairQueue()
	t0 := time.Unix(0, 0)
	for i := 1; i <= 4; i++ {
		f.push(mkJob(i, "a", 0, t0))
	}
	for i := 5; i <= 8; i++ {
		f.push(mkJob(i, "b", 0, t0))
	}
	// Tenant a queued first, but WFQ alternates claims instead of draining
	// a's backlog: a b a b a b a b.
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	for i, w := range want {
		j := f.pop(t0)
		if j == nil || j.Request.User != w {
			t.Fatalf("claim %d = %+v, want tenant %s", i, j, w)
		}
	}
	if f.pop(t0) != nil {
		t.Fatal("queue should be empty")
	}
}

func TestFairQueueFloodCannotStarve(t *testing.T) {
	f := newFairQueue()
	t0 := time.Unix(0, 0)
	for i := 1; i <= 100; i++ {
		f.push(mkJob(i, "hog", 0, t0))
	}
	f.push(mkJob(101, "small", 0, t0))
	// The 100-job flood arrived first, but the small tenant's single job is
	// claimed on the second slot, not the 101st.
	for i := 0; i < 2; i++ {
		if j := f.pop(t0); j.Request.User == "small" {
			return
		}
	}
	t.Fatal("small tenant's job not claimed within 2 slots of a 100-job flood")
}

func TestFairQueueAgingBreaksPriorityLockout(t *testing.T) {
	f := newFairQueue()
	t0 := time.Unix(0, 0)
	f.push(mkJob(0, "be", 0, t0)) // one best-effort job, submitted at t0
	// A deadline-heavy tenant keeps submitting fresh priority-9 jobs every
	// 100ms. Raw priority would lock the best-effort job out forever;
	// aging must get it claimed once it has waited long enough.
	claimedAt := -1
	for i := 1; i <= 40; i++ {
		now := t0.Add(time.Duration(i) * 100 * time.Millisecond)
		f.push(mkJob(i, "vip", 9, now))
		if j := f.pop(now); j.Request.User == "be" {
			claimedAt = i
			break
		}
	}
	if claimedAt < 0 {
		t.Fatal("best-effort job locked out for 4s by a priority-9 flood")
	}
	if claimedAt < 2 {
		t.Fatalf("priority head start missing: best-effort claimed on slot %d", claimedAt)
	}
}

func TestShedPerTenantBound(t *testing.T) {
	m := newManager(31)
	m.SetAdmission(tenant.Admission{MaxTenantQueue: 2})
	ids := make([]int, 4)
	for i := range ids {
		id, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10, User: "a"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if m.PendingCount() != 2 {
		t.Fatalf("queue depth = %d, want 2", m.PendingCount())
	}
	// The overflowing submissions (newest first) were shed, not silently
	// dropped: terminal failed records with the shed error.
	for _, id := range ids[2:] {
		j, err := m.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status != StatusFailed || j.Error != ErrShedMsg {
			t.Fatalf("overflow job %d = %s %q, want shed", id, j.Status, j.Error)
		}
	}
	if got := m.Metrics().Shed; got != 2 {
		t.Fatalf("metrics shed = %d, want 2", got)
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	// Conservation: every submission is accounted exactly once.
	u := m.TenantUsage()
	if len(u) != 1 {
		t.Fatalf("tenant rows = %+v", u)
	}
	a := u[0]
	if a.Submitted != 4 || a.Shed != 2 || a.Completed != 2 || a.Queued != 0 {
		t.Fatalf("conservation broke: %+v", a)
	}
}

func TestShedGlobalHighWaterEvictsLowestPriority(t *testing.T) {
	m := newManager(32)
	m.SetAdmission(tenant.Admission{HighWater: 2})
	lowA, _ := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10, User: "x", Priority: 0})
	lowB, _ := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10, User: "y", Priority: 0})
	high, _ := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10, User: "z", Priority: 9})
	// The high-priority submission pushed the queue over the mark; the
	// victim must be the lowest-priority newest job, not the arrival.
	if j, _ := m.Job(lowB); j.Status != StatusFailed || j.Error != ErrShedMsg {
		t.Fatalf("expected lowB shed, got %s %q", j.Status, j.Error)
	}
	for _, id := range []int{lowA, high} {
		if j, _ := m.Job(id); j.Status != StatusQueued {
			t.Fatalf("job %d should still be queued, got %s", id, j.Status)
		}
	}
	if m.PendingCount() != 2 {
		t.Fatalf("queue depth = %d, want 2", m.PendingCount())
	}
}

func TestAdmissionDisabledByDefault(t *testing.T) {
	m := newManager(33)
	for i := 0; i < 50; i++ {
		if _, err := m.Submit(Request{Circuit: circuit.GHZ(2), Shots: 10, User: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	if m.PendingCount() != 50 || m.Metrics().Shed != 0 {
		t.Fatalf("default config must not shed: depth=%d shed=%d",
			m.PendingCount(), m.Metrics().Shed)
	}
}
