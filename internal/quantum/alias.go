package quantum

import (
	"fmt"
	"math"
	"math/rand"
)

// AliasTable is a Walker/Vose alias sampler over a discrete weight vector:
// O(n) construction, O(1) per draw. It replaces the per-shot binary search
// over a cumulative table on bulk-sampling paths — for a leaf of the
// shot-branching tree holding k shots, sampling costs k draws flat instead
// of k·log(dim) probes.
type AliasTable struct {
	prob  []float64
	alias []int32
	// small/large are the construction worklists, retained so Init reuses
	// their capacity: a pooled state's sampler rebuilds allocation-free.
	small, large []int32
}

// NewAliasTable builds a sampler over weights (need not be normalized).
// Tables built this way are assumed one-shot (e.g. a distribution cached
// per compiled program), so the construction worklists are released; use
// Init on a long-lived table to rebuild allocation-free instead.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	t := &AliasTable{}
	if err := t.Init(weights); err != nil {
		return nil, err
	}
	t.small, t.large = nil, nil
	return t, nil
}

// Init (re)builds the table over weights, reusing the table's buffers when
// their capacity suffices. It fails on an empty vector, on negative or NaN
// entries, and on a non-positive or non-finite total — a zero distribution
// has no sampling semantics, so callers must handle it explicitly.
func (t *AliasTable) Init(weights []float64) error {
	n := len(weights)
	if n == 0 {
		return fmt.Errorf("quantum: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("quantum: alias weight %d is %v", i, w)
		}
		total += w
	}
	if total <= 0 || math.IsInf(total, 0) {
		return fmt.Errorf("quantum: alias weights sum to %v, want positive and finite", total)
	}
	if cap(t.prob) < n {
		t.prob = make([]float64, n)
		t.alias = make([]int32, n)
		t.small = make([]int32, 0, n)
		t.large = make([]int32, 0, n)
	}
	t.prob = t.prob[:n]
	t.alias = t.alias[:n]
	small, large := t.small[:0], t.large[:0]

	// Vose's method: scale weights so the mean bucket holds probability 1,
	// then pair each under-full bucket with an over-full donor.
	scale := float64(n) / total
	for i, w := range weights {
		p := w * scale
		t.prob[i] = p
		t.alias[i] = int32(i)
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.alias[s] = l
		t.prob[l] -= 1 - t.prob[s] // the donor gives up the bucket's slack
		if t.prob[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers on either list are within rounding of exactly full.
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	t.small, t.large = small[:0], large[:0]
	return nil
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Sample draws one outcome index, consuming exactly one rng draw: the
// integer part of u·n picks the bucket, the fractional part decides between
// the bucket's own outcome and its alias.
func (t *AliasTable) Sample(rng *rand.Rand) int {
	u := rng.Float64() * float64(len(t.prob))
	i := int(u)
	if i >= len(t.prob) {
		i = len(t.prob) - 1 // fp guard; Float64 < 1 makes this unreachable
	}
	if u-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
