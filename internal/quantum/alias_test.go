package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func TestAliasTableEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"zero-total", []float64{0, 0, 0}},
		{"negative", []float64{-1, 2}},
		{"nan", []float64{1, math.NaN()}},
		{"infinite-total", []float64{1, math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := NewAliasTable(tc.weights); err == nil {
			t.Errorf("%s: NewAliasTable(%v) accepted a degenerate distribution", tc.name, tc.weights)
		}
	}

	single, err := NewAliasTable([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := single.Sample(rng); got != 0 {
			t.Fatalf("single-outcome sample = %d, want 0", got)
		}
	}

	// Zero-weight outcomes must never be drawn.
	sparse, err := NewAliasTable([]float64{0, 5, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if got := sparse.Sample(rng); got != 1 && got != 4 {
			t.Fatalf("sparse sample = %d, want only outcomes 1 or 4", got)
		}
	}
}

// TestAliasMatchesCumulative is the sampler-agreement satellite: over fixed
// seeds, the alias sampler and the cumulative binary search draw from the
// same distribution — bounded in empirical total-variation distance, since
// the two consume uniforms differently and can't match draw-for-draw.
func TestAliasMatchesCumulative(t *testing.T) {
	weights := make([]float64, 32)
	wrng := rand.New(rand.NewSource(7))
	for i := range weights {
		if i%3 == 0 {
			continue // leave holes in the support
		}
		weights[i] = wrng.Float64() * float64(1+i%5)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}

	const draws = 200000
	alias, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	aliasCounts := make([]int, len(weights))
	arng := rand.New(rand.NewSource(11))
	for i := 0; i < draws; i++ {
		aliasCounts[alias.Sample(arng)]++
	}

	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	cumCounts := make([]int, len(weights))
	crng := rand.New(rand.NewSource(12))
	for i := 0; i < draws; i++ {
		cumCounts[sampleCumulative(cum, acc, crng)]++
	}

	tv := 0.0
	for i := range weights {
		tv += math.Abs(float64(aliasCounts[i])-float64(cumCounts[i])) / (2 * draws)
		// Both samplers must also match the exact distribution.
		p := weights[i] / total
		if diff := math.Abs(float64(aliasCounts[i])/draws - p); diff > 0.01 {
			t.Errorf("outcome %d: alias frequency off exact probability by %.4f", i, diff)
		}
		if weights[i] == 0 && (aliasCounts[i] != 0 || cumCounts[i] != 0) {
			t.Errorf("outcome %d has zero weight but was drawn (alias %d, cumulative %d)",
				i, aliasCounts[i], cumCounts[i])
		}
	}
	if tv > 0.02 {
		t.Errorf("alias vs cumulative empirical total-variation distance = %.4f, want <= 0.02", tv)
	}
}

func TestAliasInitReusesBuffers(t *testing.T) {
	tab, err := NewAliasTable([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if allocs := testing.AllocsPerRun(100, func() { tab.Sample(rng) }); allocs != 0 {
		t.Errorf("Sample allocates %.1f times per draw, want 0", allocs)
	}
	w := []float64{4, 3, 2, 1}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := tab.Init(w); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("same-size Init allocates %.1f times per rebuild, want 0", allocs)
	}
}

// TestSampleBitstringsAliasAgreesWithSingleDraws pins the bulk path against
// the single-draw linear walk at the state level: both methods sample the
// same state distribution (chi-square would be overkill; a generous
// per-outcome frequency bound over 40k draws is deterministic and tight
// enough to catch a mis-built table).
func TestSampleBitstringsAliasAgreesWithSingleDraws(t *testing.T) {
	st := MustNewState(3)
	// A ragged superposition over all 8 outcomes.
	for _, op := range []struct {
		q     int
		theta float64
	}{{0, 0.4}, {1, 1.1}, {2, 2.3}} {
		if err := st.Apply1Q(op.q, RY(op.theta)); err != nil {
			t.Fatal(err)
		}
	}
	const draws = 40000
	bulk := st.SampleBitstrings(draws, rand.New(rand.NewSource(21))) // alias path (>= aliasMinShots)
	single := make([]int, draws)
	srng := rand.New(rand.NewSource(22))
	for i := range single {
		single[i] = st.SampleBitstring(srng)
	}
	hb, hs := Histogram(bulk), Histogram(single)
	for o := 0; o < st.Dim(); o++ {
		fb := float64(hb[o]) / draws
		fs := float64(hs[o]) / draws
		if math.Abs(fb-fs) > 0.015 {
			t.Errorf("outcome %d: bulk frequency %.4f vs single-draw %.4f", o, fb, fs)
		}
		if p := st.Probability(o); math.Abs(fb-p) > 0.015 {
			t.Errorf("outcome %d: bulk frequency %.4f vs exact probability %.4f", o, fb, p)
		}
	}
}

func TestSampleBitstringsIntoAllocFree(t *testing.T) {
	st, err := AcquireState(4)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseState(st)
	if err := st.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	dst := make([]int, 64)
	dst = st.SampleBitstringsInto(dst, 64, rng) // warm the scratch buffers
	if allocs := testing.AllocsPerRun(50, func() {
		dst = st.SampleBitstringsInto(dst, 64, rng)
	}); allocs != 0 {
		t.Errorf("SampleBitstringsInto allocates %.1f times per call on a warm state, want 0", allocs)
	}
}
