package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// MaxDensityQubits bounds density-matrix allocation: a 10-qubit rho is
// already 2^20 complex128 = 16 MiB.
const MaxDensityQubits = 10

// Density is an exact density-matrix simulator for small registers. It
// exists to validate the trajectory-based noise model: averaging
// trajectories over many shots must converge to the exact channel action
// computed here. (The production executor uses trajectories because a
// 20-qubit density matrix is 2^40 amplitudes.)
type Density struct {
	n   int
	dim int
	rho []complex128 // row-major dim x dim
}

// NewDensity returns |0..0><0..0| over n qubits.
func NewDensity(n int) (*Density, error) {
	if n < 1 || n > MaxDensityQubits {
		return nil, fmt.Errorf("quantum: density qubit count %d outside [1, %d]", n, MaxDensityQubits)
	}
	d := &Density{n: n, dim: 1 << uint(n)}
	d.rho = make([]complex128, d.dim*d.dim)
	d.rho[0] = 1
	return d, nil
}

// FromState builds the pure-state density matrix |psi><psi|.
func FromState(s *State) (*Density, error) {
	if s.NumQubits() > MaxDensityQubits {
		return nil, fmt.Errorf("quantum: state too large for density simulation (%d qubits)", s.NumQubits())
	}
	d, err := NewDensity(s.NumQubits())
	if err != nil {
		return nil, err
	}
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			d.rho[i*d.dim+j] = s.Amplitude(i) * cmplx.Conj(s.Amplitude(j))
		}
	}
	return d, nil
}

// NumQubits returns the register size.
func (d *Density) NumQubits() int { return d.n }

// Element returns rho[i][j].
func (d *Density) Element(i, j int) complex128 { return d.rho[i*d.dim+j] }

// Trace returns Tr(rho) (1 for a valid state).
func (d *Density) Trace() complex128 {
	var t complex128
	for i := 0; i < d.dim; i++ {
		t += d.rho[i*d.dim+i]
	}
	return t
}

// Purity returns Tr(rho²): 1 for pure states, 1/dim for maximally mixed.
func (d *Density) Purity() float64 {
	sum := 0.0
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			a := d.rho[i*d.dim+j]
			b := d.rho[j*d.dim+i]
			sum += real(a)*real(b) - imag(a)*imag(b)
		}
	}
	return sum
}

// Probability returns the population of basis state idx.
func (d *Density) Probability(idx int) float64 {
	return real(d.rho[idx*d.dim+idx])
}

// expand1Q lifts a single-qubit operator to the full register dimension
// acting on qubit q (identity elsewhere) as an implicit function; we apply
// operators directly without materializing the big matrix.

// Apply1Q applies rho -> U rho U† for a single-qubit unitary on qubit q.
func (d *Density) Apply1Q(q int, m Matrix2) error {
	if q < 0 || q >= d.n {
		return fmt.Errorf("quantum: density qubit %d out of range [0, %d)", q, d.n)
	}
	d.leftMultiply(q, m)
	d.rightMultiplyDagger(q, m)
	return nil
}

// leftMultiply computes rho <- (U_q ⊗ I) rho.
func (d *Density) leftMultiply(q int, m Matrix2) {
	bit := 1 << uint(q)
	for col := 0; col < d.dim; col++ {
		for i0 := 0; i0 < d.dim; i0++ {
			if i0&bit != 0 {
				continue
			}
			i1 := i0 | bit
			a0 := d.rho[i0*d.dim+col]
			a1 := d.rho[i1*d.dim+col]
			d.rho[i0*d.dim+col] = m[0][0]*a0 + m[0][1]*a1
			d.rho[i1*d.dim+col] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// rightMultiplyDagger computes rho <- rho (U_q ⊗ I)†.
func (d *Density) rightMultiplyDagger(q int, m Matrix2) {
	bit := 1 << uint(q)
	md := Dagger2(m)
	for row := 0; row < d.dim; row++ {
		base := row * d.dim
		for j0 := 0; j0 < d.dim; j0++ {
			if j0&bit != 0 {
				continue
			}
			j1 := j0 | bit
			a0 := d.rho[base+j0]
			a1 := d.rho[base+j1]
			// (rho · M)[r][j] = Σ_k rho[r][k] M[k][j] over the qubit block.
			d.rho[base+j0] = a0*md[0][0] + a1*md[1][0]
			d.rho[base+j1] = a0*md[0][1] + a1*md[1][1]
		}
	}
}

// Apply2Q applies a two-qubit unitary (first argument = low bit).
func (d *Density) Apply2Q(q1, q2 int, m Matrix4) error {
	if q1 < 0 || q1 >= d.n || q2 < 0 || q2 >= d.n || q1 == q2 {
		return fmt.Errorf("quantum: bad density two-qubit pair (%d,%d)", q1, q2)
	}
	b1 := 1 << uint(q1)
	b2 := 1 << uint(q2)
	// Left multiply.
	for col := 0; col < d.dim; col++ {
		for i := 0; i < d.dim; i++ {
			if i&b1 != 0 || i&b2 != 0 {
				continue
			}
			idx := [4]int{i, i | b1, i | b2, i | b1 | b2}
			var v [4]complex128
			for k := 0; k < 4; k++ {
				v[k] = d.rho[idx[k]*d.dim+col]
			}
			for r := 0; r < 4; r++ {
				var sum complex128
				for k := 0; k < 4; k++ {
					sum += m[r][k] * v[k]
				}
				d.rho[idx[r]*d.dim+col] = sum
			}
		}
	}
	// Right multiply by dagger.
	md := Dagger4(m)
	for row := 0; row < d.dim; row++ {
		base := row * d.dim
		for j := 0; j < d.dim; j++ {
			if j&b1 != 0 || j&b2 != 0 {
				continue
			}
			idx := [4]int{j, j | b1, j | b2, j | b1 | b2}
			var v [4]complex128
			for k := 0; k < 4; k++ {
				v[k] = d.rho[base+idx[k]]
			}
			for c := 0; c < 4; c++ {
				var sum complex128
				for k := 0; k < 4; k++ {
					sum += v[k] * md[k][c]
				}
				d.rho[base+idx[c]] = sum
			}
		}
	}
	return nil
}

// ApplyChannel applies a single-qubit channel exactly:
// rho -> Σ_i K_i rho K_i†.
func (d *Density) ApplyChannel(q int, ch Channel) error {
	if q < 0 || q >= d.n {
		return fmt.Errorf("quantum: density qubit %d out of range [0, %d)", q, d.n)
	}
	if len(ch.Kraus) == 0 {
		return fmt.Errorf("quantum: channel %q has no Kraus operators", ch.Name)
	}
	out := make([]complex128, len(d.rho))
	work := make([]complex128, len(d.rho))
	for _, k := range ch.Kraus {
		copy(work, d.rho)
		tmp := &Density{n: d.n, dim: d.dim, rho: work}
		tmp.leftMultiply(q, k)
		tmp.rightMultiplyDagger(q, k)
		for i := range out {
			out[i] += work[i]
		}
	}
	copy(d.rho, out)
	return nil
}

// ExpectationZ returns Tr(rho Z_q).
func (d *Density) ExpectationZ(q int) (float64, error) {
	if q < 0 || q >= d.n {
		return 0, fmt.Errorf("quantum: density qubit %d out of range", q)
	}
	bit := 1 << uint(q)
	sum := 0.0
	for i := 0; i < d.dim; i++ {
		p := real(d.rho[i*d.dim+i])
		if i&bit == 0 {
			sum += p
		} else {
			sum -= p
		}
	}
	return sum, nil
}

// Fidelity returns <psi|rho|psi> for a pure reference state.
func (d *Density) Fidelity(s *State) (float64, error) {
	if s.NumQubits() != d.n {
		return 0, fmt.Errorf("quantum: fidelity between %d-qubit rho and %d-qubit state", d.n, s.NumQubits())
	}
	var sum complex128
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			sum += cmplx.Conj(s.Amplitude(i)) * d.rho[i*d.dim+j] * s.Amplitude(j)
		}
	}
	return real(sum), nil
}

// IsValid checks hermiticity, unit trace, and positive diagonal within tol.
func (d *Density) IsValid(tol float64) bool {
	if cmplx.Abs(d.Trace()-1) > tol {
		return false
	}
	for i := 0; i < d.dim; i++ {
		if real(d.rho[i*d.dim+i]) < -tol {
			return false
		}
		if math.Abs(imag(d.rho[i*d.dim+i])) > tol {
			return false
		}
		for j := i + 1; j < d.dim; j++ {
			diff := d.rho[i*d.dim+j] - cmplx.Conj(d.rho[j*d.dim+i])
			if cmplx.Abs(diff) > tol {
				return false
			}
		}
	}
	return true
}
