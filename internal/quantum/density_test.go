package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestNewDensityValidation(t *testing.T) {
	if _, err := NewDensity(0); err == nil {
		t.Error("expected error for 0 qubits")
	}
	if _, err := NewDensity(MaxDensityQubits + 1); err == nil {
		t.Error("expected error above the density limit")
	}
	d, err := NewDensity(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Probability(0) != 1 || cmplx.Abs(d.Trace()-1) > 1e-12 {
		t.Error("fresh density should be |00><00|")
	}
	if math.Abs(d.Purity()-1) > 1e-12 {
		t.Errorf("pure state purity = %g", d.Purity())
	}
}

func TestDensityMatchesStateForUnitaries(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := MustNewState(3)
	d, err := NewDensity(3)
	if err != nil {
		t.Fatal(err)
	}
	gates := []Matrix2{H, X, T, RY(0.7), PRX(1.1, 0.3)}
	for i := 0; i < 12; i++ {
		q := rng.Intn(3)
		g := gates[rng.Intn(len(gates))]
		if err := s.Apply1Q(q, g); err != nil {
			t.Fatal(err)
		}
		if err := d.Apply1Q(q, g); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			a := rng.Intn(3)
			b := (a + 1) % 3
			if err := s.Apply2Q(a, b, CZ); err != nil {
				t.Fatal(err)
			}
			if err := d.Apply2Q(a, b, CZ); err != nil {
				t.Fatal(err)
			}
		}
	}
	f, err := d.Fidelity(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-9 {
		t.Errorf("density/state divergence: fidelity %g", f)
	}
	if !d.IsValid(1e-9) {
		t.Error("density matrix invalid after unitaries")
	}
}

func TestFromState(t *testing.T) {
	s := MustNewState(2)
	PrepareGHZ(s)
	d, err := FromState(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Probability(0)-0.5) > 1e-12 || math.Abs(d.Probability(3)-0.5) > 1e-12 {
		t.Error("Bell density populations wrong")
	}
	// Off-diagonal coherence |00><11| must be 0.5.
	if cmplx.Abs(d.Element(0, 3)-0.5) > 1e-12 {
		t.Errorf("Bell coherence = %v", d.Element(0, 3))
	}
	if math.Abs(d.Purity()-1) > 1e-12 {
		t.Error("pure Bell state should have purity 1")
	}
}

func TestChannelExactActionAmplitudeDamping(t *testing.T) {
	// |1><1| under amplitude damping gamma: P(1) = 1-gamma exactly.
	d, _ := NewDensity(1)
	d.Apply1Q(0, X)
	gamma := 0.3
	if err := d.ApplyChannel(0, AmplitudeDamping(gamma)); err != nil {
		t.Fatal(err)
	}
	if got := d.Probability(1); math.Abs(got-(1-gamma)) > 1e-12 {
		t.Errorf("P(1) = %g, want %g", got, 1-gamma)
	}
	if !d.IsValid(1e-12) {
		t.Error("invalid density after channel")
	}
}

func TestChannelExactActionDephasing(t *testing.T) {
	// |+><+| under phase damping lambda: coherence scales by sqrt(1-lambda).
	d, _ := NewDensity(1)
	d.Apply1Q(0, H)
	lambda := 0.6
	if err := d.ApplyChannel(0, PhaseDamping(lambda)); err != nil {
		t.Fatal(err)
	}
	want := 0.5 * math.Sqrt(1-lambda)
	if got := cmplx.Abs(d.Element(0, 1)); math.Abs(got-want) > 1e-12 {
		t.Errorf("coherence = %g, want %g", got, want)
	}
	// Populations untouched.
	if math.Abs(d.Probability(0)-0.5) > 1e-12 {
		t.Error("dephasing changed populations")
	}
}

func TestDepolarizingReducesPurity(t *testing.T) {
	d, _ := NewDensity(1)
	if err := d.ApplyChannel(0, Depolarizing(0.75)); err != nil {
		t.Fatal(err)
	}
	// p = 0.75 is full depolarization -> maximally mixed, purity 1/2.
	if got := d.Purity(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("purity = %g, want 0.5", got)
	}
}

// The critical validation: trajectory averages converge to the exact
// density-matrix channel action.
func TestTrajectoriesConvergeToDensity(t *testing.T) {
	const trials = 4000
	rng := rand.New(rand.NewSource(62))
	gamma, lambda := 0.25, 0.4

	// Exact: |+1> under damping on q0 and dephasing on q1... build state
	// RY(1.0) on q0, H on q1, CZ entangles.
	exact, _ := NewDensity(2)
	exact.Apply1Q(0, RY(1.0))
	exact.Apply1Q(1, H)
	exact.Apply2Q(0, 1, CZ)
	exact.ApplyChannel(0, AmplitudeDamping(gamma))
	exact.ApplyChannel(1, PhaseDamping(lambda))

	// Trajectory estimate of <Z0> and <Z1>.
	sumZ0, sumZ1 := 0.0, 0.0
	for i := 0; i < trials; i++ {
		s := MustNewState(2)
		s.Apply1Q(0, RY(1.0))
		s.Apply1Q(1, H)
		s.Apply2Q(0, 1, CZ)
		if err := s.ApplyChannel(0, AmplitudeDamping(gamma), rng); err != nil {
			t.Fatal(err)
		}
		if err := s.ApplyChannel(1, PhaseDamping(lambda), rng); err != nil {
			t.Fatal(err)
		}
		z0, _ := s.ExpectationZ(0)
		z1, _ := s.ExpectationZ(1)
		sumZ0 += z0
		sumZ1 += z1
	}
	gotZ0, gotZ1 := sumZ0/trials, sumZ1/trials
	wantZ0, _ := exact.ExpectationZ(0)
	wantZ1, _ := exact.ExpectationZ(1)
	if math.Abs(gotZ0-wantZ0) > 0.05 {
		t.Errorf("<Z0>: trajectories %g vs exact %g", gotZ0, wantZ0)
	}
	if math.Abs(gotZ1-wantZ1) > 0.05 {
		t.Errorf("<Z1>: trajectories %g vs exact %g", gotZ1, wantZ1)
	}
}

func TestDensityValidationErrors(t *testing.T) {
	d, _ := NewDensity(2)
	if err := d.Apply1Q(5, X); err == nil {
		t.Error("out-of-range qubit should fail")
	}
	if err := d.Apply2Q(0, 0, CZ); err == nil {
		t.Error("duplicate qubits should fail")
	}
	if err := d.ApplyChannel(9, AmplitudeDamping(0.1)); err == nil {
		t.Error("out-of-range channel qubit should fail")
	}
	if err := d.ApplyChannel(0, Channel{Name: "empty"}); err == nil {
		t.Error("empty channel should fail")
	}
	if _, err := d.ExpectationZ(9); err == nil {
		t.Error("out-of-range expectation should fail")
	}
	s := MustNewState(3)
	if _, err := d.Fidelity(s); err == nil {
		t.Error("size mismatch fidelity should fail")
	}
	big := MustNewState(12)
	if _, err := FromState(big); err == nil {
		t.Error("oversized FromState should fail")
	}
}
