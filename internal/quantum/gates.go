package quantum

import (
	"math"
	"math/cmplx"
)

// Matrix2 is a single-qubit operator in row-major order.
type Matrix2 [2][2]complex128

// Matrix4 is a two-qubit operator in row-major order over basis
// |00>,|01>,|10>,|11> (first gate qubit = low bit).
type Matrix4 [4][4]complex128

// Standard single-qubit gates.
var (
	I2 = Matrix2{{1, 0}, {0, 1}}
	X  = Matrix2{{0, 1}, {1, 0}}
	Y  = Matrix2{{0, complex(0, -1)}, {complex(0, 1), 0}}
	Z  = Matrix2{{1, 0}, {0, -1}}
	H  = Matrix2{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	S    = Matrix2{{1, 0}, {0, complex(0, 1)}}
	Sdag = Matrix2{{1, 0}, {0, complex(0, -1)}}
	T    = Matrix2{{1, 0}, {0, cmplx.Rect(1, math.Pi/4)}}
	Tdag = Matrix2{{1, 0}, {0, cmplx.Rect(1, -math.Pi/4)}}
)

// RX returns the rotation exp(-i θ X / 2).
func RX(theta float64) Matrix2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return Matrix2{{c, s}, {s, c}}
}

// RY returns the rotation exp(-i θ Y / 2).
func RY(theta float64) Matrix2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return Matrix2{{c, -s}, {s, c}}
}

// RZ returns the rotation exp(-i θ Z / 2).
func RZ(theta float64) Matrix2 {
	return Matrix2{
		{cmplx.Rect(1, -theta/2), 0},
		{0, cmplx.Rect(1, theta/2)},
	}
}

// PRX returns the phased-X rotation used as the native single-qubit gate of
// the IQM-style transmon QPU: a rotation by angle theta about the axis
// cos(φ)X + sin(φ)Y in the equator of the Bloch sphere.
// PRX(θ, 0) = RX(θ); PRX(θ, π/2) = RY(θ).
func PRX(theta, phi float64) Matrix2 {
	c := complex(math.Cos(theta/2), 0)
	s := math.Sin(theta / 2)
	return Matrix2{
		{c, complex(-s*math.Sin(phi), -s*math.Cos(phi))},
		{complex(s*math.Sin(phi), -s*math.Cos(phi)), c},
	}
}

// Standard two-qubit gates. Qubit ordering: the first qubit argument of
// Apply2Q is the low bit of the 2-bit index.
var (
	// CZ is symmetric: phase -1 on |11>. The native two-qubit gate of the
	// tunable-coupler transmon QPU.
	CZ = Matrix4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, -1},
	}
	// CNOT01 flips the second (high) qubit when the first (low) is 1.
	CNOT01 = Matrix4{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	}
	// CNOT10 flips the first (low) qubit when the second (high) is 1.
	CNOT10 = Matrix4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}
	// SWAP exchanges the two qubits.
	SWAP = Matrix4{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	}
	// ISWAP exchanges with a phase of i.
	ISWAP = Matrix4{
		{1, 0, 0, 0},
		{0, 0, complex(0, 1), 0},
		{0, complex(0, 1), 0, 0},
		{0, 0, 0, 1},
	}
)

// Phase returns the unit complex number e^(iθ).
func Phase(theta float64) complex128 { return cmplx.Rect(1, theta) }

// Mul2 returns the matrix product a·b.
func Mul2(a, b Matrix2) Matrix2 {
	var out Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return out
}

// Dagger2 returns the conjugate transpose of m.
func Dagger2(m Matrix2) Matrix2 {
	return Matrix2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

// IsUnitary2 reports whether m†m ≈ I within tol.
func IsUnitary2(m Matrix2, tol float64) bool {
	p := Mul2(Dagger2(m), m)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// Mul4 returns the matrix product a·b for two-qubit operators.
func Mul4(a, b Matrix4) Matrix4 {
	var out Matrix4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var sum complex128
			for k := 0; k < 4; k++ {
				sum += a[i][k] * b[k][j]
			}
			out[i][j] = sum
		}
	}
	return out
}

// Dagger4 returns the conjugate transpose of m.
func Dagger4(m Matrix4) Matrix4 {
	var out Matrix4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out[i][j] = cmplx.Conj(m[j][i])
		}
	}
	return out
}

// IsUnitary4 reports whether m†m ≈ I within tol.
func IsUnitary4(m Matrix4, tol float64) bool {
	p := Mul4(Dagger4(m), m)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// PrepareGHZ drives the state to the n-qubit GHZ state
// (|00..0> + |11..1>)/√2 using H on qubit 0 and a CNOT ladder — the
// standardized health-check algorithm the paper runs on qubit subsets (§3.2).
func PrepareGHZ(s *State) error {
	s.Reset()
	if err := s.Apply1Q(0, H); err != nil {
		return err
	}
	for q := 1; q < s.NumQubits(); q++ {
		// CNOT with control q-1 (low arg) and target q (high arg).
		if err := s.Apply2Q(q-1, q, CNOT01); err != nil {
			return err
		}
	}
	return nil
}

// GHZFidelity returns the fidelity of the state with the ideal n-qubit GHZ
// state.
func GHZFidelity(s *State) float64 {
	dim := s.Dim()
	a0 := s.Amplitude(0)
	a1 := s.Amplitude(dim - 1)
	// |<GHZ|ψ>|² with <GHZ| = (⟨0…0| + ⟨1…1|)/√2.
	ip := (a0 + a1) / complex(math.Sqrt2, 0)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}
