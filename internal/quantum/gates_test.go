package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStandardGatesAreUnitary(t *testing.T) {
	for name, g := range map[string]Matrix2{
		"I": I2, "X": X, "Y": Y, "Z": Z, "H": H, "S": S, "Sdag": Sdag, "T": T, "Tdag": Tdag,
	} {
		if !IsUnitary2(g, 1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
	for name, g := range map[string]Matrix4{
		"CZ": CZ, "CNOT01": CNOT01, "CNOT10": CNOT10, "SWAP": SWAP, "ISWAP": ISWAP,
	} {
		if !IsUnitary4(g, 1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestRotationsAreUnitaryProperty(t *testing.T) {
	f := func(theta, phi float64) bool {
		return IsUnitary2(RX(theta), 1e-10) &&
			IsUnitary2(RY(theta), 1e-10) &&
			IsUnitary2(RZ(theta), 1e-10) &&
			IsUnitary2(PRX(theta, phi), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPRXReducesToRXAndRY(t *testing.T) {
	for _, theta := range []float64{0, 0.3, math.Pi / 2, math.Pi, 2.5} {
		rx := RX(theta)
		prx0 := PRX(theta, 0)
		ry := RY(theta)
		prx90 := PRX(theta, math.Pi/2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if cmplx.Abs(rx[i][j]-prx0[i][j]) > 1e-12 {
					t.Errorf("PRX(θ,0) != RX(θ) at θ=%g [%d][%d]: %v vs %v", theta, i, j, prx0[i][j], rx[i][j])
				}
				if cmplx.Abs(ry[i][j]-prx90[i][j]) > 1e-12 {
					t.Errorf("PRX(θ,π/2) != RY(θ) at θ=%g [%d][%d]: %v vs %v", theta, i, j, prx90[i][j], ry[i][j])
				}
			}
		}
	}
}

func TestRotationComposition(t *testing.T) {
	// RZ(a)·RZ(b) == RZ(a+b) up to numerical error.
	a, b := 0.7, 1.9
	lhs := Mul2(RZ(a), RZ(b))
	rhs := RZ(a + b)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(lhs[i][j]-rhs[i][j]) > 1e-12 {
				t.Errorf("RZ composition mismatch at [%d][%d]", i, j)
			}
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	// X·X = I, X·Y = iZ, Z·X = iY.
	xx := Mul2(X, X)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(xx[i][j]-I2[i][j]) > 1e-12 {
				t.Error("X·X != I")
			}
		}
	}
	xy := Mul2(X, Y)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex(0, 1) * Z[i][j]
			if cmplx.Abs(xy[i][j]-want) > 1e-12 {
				t.Error("X·Y != iZ")
			}
		}
	}
}

func TestHZHEqualsX(t *testing.T) {
	hzh := Mul2(Mul2(H, Z), H)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(hzh[i][j]-X[i][j]) > 1e-12 {
				t.Errorf("HZH != X at [%d][%d]: %v", i, j, hzh[i][j])
			}
		}
	}
}

func TestDagger4Involution(t *testing.T) {
	m := ISWAP
	dd := Dagger4(Dagger4(m))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if dd[i][j] != m[i][j] {
				t.Fatal("dagger twice should be identity operation")
			}
		}
	}
}

// CZ via CNOT conjugated by Hadamards: (I⊗H)·CNOT01·(I⊗H) == CZ.
func TestCZFromCNOT(t *testing.T) {
	s1 := MustNewState(2)
	s2 := MustNewState(2)
	rng := rand.New(rand.NewSource(12))
	// Random product state.
	for q := 0; q < 2; q++ {
		theta, phi := rng.Float64()*math.Pi, rng.Float64()*math.Pi
		s1.Apply1Q(q, PRX(theta, phi))
		s2.Apply1Q(q, PRX(theta, phi))
	}
	s1.Apply2Q(0, 1, CZ)
	s2.Apply1Q(1, H)
	s2.Apply2Q(0, 1, CNOT01)
	s2.Apply1Q(1, H)
	f, err := s1.Fidelity(s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-10 {
		t.Errorf("H-conjugated CNOT != CZ, fidelity %g", f)
	}
}

func TestSWAPFromThreeCNOTs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s1 := randomState(2, rng)
	s2 := s1.Clone()
	s1.Apply2Q(0, 1, SWAP)
	s2.Apply2Q(0, 1, CNOT01)
	s2.Apply2Q(0, 1, CNOT10)
	s2.Apply2Q(0, 1, CNOT01)
	f, err := s1.Fidelity(s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-10 {
		t.Errorf("3-CNOT SWAP mismatch, fidelity %g", f)
	}
}
