package quantum

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Channel is a single-qubit quantum channel expressed as Kraus operators.
// Sum_i K_i† K_i must equal the identity (trace preservation).
type Channel struct {
	Name  string
	Kraus []Matrix2
}

// Valid reports whether the channel is trace-preserving within tol.
func (c Channel) Valid(tol float64) bool {
	var sum Matrix2
	for _, k := range c.Kraus {
		kk := Mul2(Dagger2(k), k)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				sum[i][j] += kk[i][j]
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			d := sum[i][j] - want
			if math.Hypot(real(d), imag(d)) > tol {
				return false
			}
		}
	}
	return true
}

// AmplitudeDamping returns the T1-relaxation channel with decay probability
// gamma = 1 - exp(-t/T1): excited-state population decays toward |0>.
func AmplitudeDamping(gamma float64) Channel {
	g := clamp01(gamma)
	return Channel{
		Name: "amplitude-damping",
		Kraus: []Matrix2{
			{{1, 0}, {0, complex(math.Sqrt(1-g), 0)}},
			{{0, complex(math.Sqrt(g), 0)}, {0, 0}},
		},
	}
}

// PhaseDamping returns the pure-dephasing channel with dephasing parameter
// lambda, eroding off-diagonal coherence (the T2 process beyond T1): <X>
// scales by sqrt(1-lambda). It is expressed in the phase-flip Kraus form
// {√(1-p)·I, √p·Z} with p = (1-√(1-λ))/2, which is unitarily equivalent to
// the textbook projector form but preserves populations along every
// individual trajectory, not just on ensemble average.
func PhaseDamping(lambda float64) Channel {
	l := clamp01(lambda)
	p := (1 - math.Sqrt(1-l)) / 2
	s0 := complex(math.Sqrt(1-p), 0)
	s1 := complex(math.Sqrt(p), 0)
	return Channel{
		Name: "phase-damping",
		Kraus: []Matrix2{
			{{s0, 0}, {0, s0}},
			{{s1, 0}, {0, -s1}},
		},
	}
}

// Depolarizing returns the single-qubit depolarizing channel with error
// probability p (X, Y, Z each applied with probability p/3) — the standard
// abstraction for gate infidelity.
func Depolarizing(p float64) Channel {
	pp := clamp01(p)
	s0 := complex(math.Sqrt(1-pp), 0)
	sp := complex(math.Sqrt(pp/3), 0)
	scale := func(m Matrix2, f complex128) Matrix2 {
		var out Matrix2
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				out[i][j] = m[i][j] * f
			}
		}
		return out
	}
	return Channel{
		Name: "depolarizing",
		Kraus: []Matrix2{
			scale(I2, s0), scale(X, sp), scale(Y, sp), scale(Z, sp),
		},
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Compose returns the channel equivalent to applying a and then b: Kraus
// operators are the pairwise products K_b·K_a. Trajectory sampling of the
// composite (joint probability ||K_b K_a|ψ>||²) draws from the same
// ensemble as sampling a then b sequentially, so compiled execution can
// collapse a gate's depolarizing + damping + dephasing sequence into one
// channel application. Kraus operators are ordered heaviest-first (by
// Frobenius norm, the branch weight on a maximally-mixed input) so the
// near-identity branch that dominates realistic noise is tried first.
func Compose(a, b Channel) Channel {
	ks := make([]Matrix2, 0, len(a.Kraus)*len(b.Kraus))
	for _, kb := range b.Kraus {
		for _, ka := range a.Kraus {
			ks = append(ks, Mul2(kb, ka))
		}
	}
	sort.Slice(ks, func(i, j int) bool { return frobNorm2(ks[i]) > frobNorm2(ks[j]) })
	return Channel{Name: a.Name + "*" + b.Name, Kraus: ks}
}

// DominantWeight returns the channel's heaviest branch weight on the
// maximally mixed state, max_i ||K_i||_F²/2. It is the compile-time
// estimate behind the execution engine's per-job strategy pick: 1 minus it
// approximates how often a shot leaves the dominant trajectory at this
// noise site, before any state is available to compute exact weights.
func (c Channel) DominantWeight() float64 {
	best := 0.0
	for _, k := range c.Kraus {
		if w := frobNorm2(k) / 2; w > best {
			best = w
		}
	}
	return best
}

// frobNorm2 is the squared Frobenius norm of m.
func frobNorm2(m Matrix2) float64 {
	sum := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			sum += real(m[i][j])*real(m[i][j]) + imag(m[i][j])*imag(m[i][j])
		}
	}
	return sum
}

// ApplyChannel applies a single-qubit channel to qubit q using the quantum
// trajectory (Monte-Carlo wavefunction) method: Kraus operator K_i is chosen
// with probability ||K_i|ψ>||² and the state is renormalized. Averaging over
// trajectories reproduces the density-matrix evolution.
//
// Branch selection draws r once and walks the Kraus list, stopping at the
// first operator whose cumulative weight exceeds r — for realistic noise
// the first (near-identity) branch almost always wins, so only one weight
// is computed. The renormalization reuses the selected branch weight
// (||K|ψ>||² is the post-application squared norm by definition) instead
// of a full norm pass.
func (s *State) ApplyChannel(q int, ch Channel, rng *rand.Rand) error {
	if err := s.checkQubit(q); err != nil {
		return err
	}
	if len(ch.Kraus) == 0 {
		return fmt.Errorf("quantum: channel %q has no Kraus operators", ch.Name)
	}
	r := rng.Float64()
	acc := 0.0
	chosen, chosenP := -1, 0.0
	best, bestP := 0, -1.0
	for i := range ch.Kraus {
		// p_i = ||K_i |ψ>||², the trajectory branch weight.
		p := s.branchProbability(q, ch.Kraus[i])
		if p > bestP {
			best, bestP = i, p
		}
		acc += p
		if r < acc {
			chosen, chosenP = i, p
			break
		}
	}
	if chosen < 0 {
		// Rounding pushed r past the total weight; fall back to the
		// heaviest branch.
		if bestP < 1e-300 {
			// Numerically impossible for a trace-preserving channel on a
			// normalized state.
			return fmt.Errorf("quantum: channel %q produced no viable branch", ch.Name)
		}
		chosen, chosenP = best, bestP
	}
	return s.ApplyKraus(q, ch.Kraus[chosen], chosenP)
}

// KrausWeight returns the trajectory branch weight ||K|ψ>||² of a single
// Kraus operator on qubit q — the quantity the shot-branching engine
// computes once per subtree instead of once per shot.
func (s *State) KrausWeight(q int, k Matrix2) (float64, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	return s.branchProbability(q, k), nil
}

// ApplyKraus applies one Kraus operator to qubit q and renormalizes by the
// caller-supplied branch weight w = ||K|ψ>||² (as returned by KrausWeight
// on the pre-application state). Together with KrausWeight it decomposes
// ApplyChannel so shot-branching can pick the branch for a whole block of
// shots from one set of weights.
func (s *State) ApplyKraus(q int, k Matrix2, weight float64) error {
	if weight < 1e-300 {
		return fmt.Errorf("quantum: Kraus branch weight %g too small to renormalize", weight)
	}
	if err := s.Apply1Q(q, k); err != nil {
		return err
	}
	inv := complex(1/math.Sqrt(weight), 0)
	for i := range s.amps {
		s.amps[i] *= inv
	}
	return nil
}

// branchProbability returns ||K|ψ>||² for a single-qubit operator K on q.
func (s *State) branchProbability(q int, k Matrix2) float64 {
	bit := 1 << uint(q)
	sum := 0.0
	for i0 := 0; i0 < len(s.amps); i0++ {
		if i0&bit != 0 {
			continue
		}
		i1 := i0 | bit
		a0, a1 := s.amps[i0], s.amps[i1]
		b0 := k[0][0]*a0 + k[0][1]*a1
		b1 := k[1][0]*a0 + k[1][1]*a1
		sum += real(b0)*real(b0) + imag(b0)*imag(b0)
		sum += real(b1)*real(b1) + imag(b1)*imag(b1)
	}
	return sum
}

// ReadoutModel is a per-qubit classical confusion model: P10[q] is the
// probability of reading 1 given the true outcome 0, and P01[q] of reading 0
// given 1 (asymmetric, as in real dispersive readout).
type ReadoutModel struct {
	P10 []float64
	P01 []float64
}

// UniformReadout builds a symmetric readout model with error eps on all n
// qubits.
func UniformReadout(n int, eps float64) *ReadoutModel {
	p10 := make([]float64, n)
	p01 := make([]float64, n)
	for i := range p10 {
		p10[i] = eps
		p01[i] = eps
	}
	return &ReadoutModel{P10: p10, P01: p01}
}

// Corrupt flips bits of the true outcome according to the confusion model.
func (r *ReadoutModel) Corrupt(outcome int, rng *rand.Rand) int {
	if r == nil {
		return outcome
	}
	for q := range r.P10 {
		bit := 1 << uint(q)
		if outcome&bit == 0 {
			if rng.Float64() < r.P10[q] {
				outcome |= bit
			}
		} else {
			if rng.Float64() < r.P01[q] {
				outcome &^= bit
			}
		}
	}
	return outcome
}

// AssignmentFidelity returns the mean readout assignment fidelity of qubit q:
// 1 - (P10+P01)/2.
func (r *ReadoutModel) AssignmentFidelity(q int) float64 {
	if r == nil || q >= len(r.P10) {
		return 1
	}
	return 1 - (r.P10[q]+r.P01[q])/2
}
