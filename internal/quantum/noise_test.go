package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChannelsAreTracePreserving(t *testing.T) {
	for _, ch := range []Channel{
		AmplitudeDamping(0), AmplitudeDamping(0.3), AmplitudeDamping(1),
		PhaseDamping(0), PhaseDamping(0.5), PhaseDamping(1),
		Depolarizing(0), Depolarizing(0.1), Depolarizing(0.75), Depolarizing(1),
	} {
		if !ch.Valid(1e-12) {
			t.Errorf("channel %s not trace-preserving", ch.Name)
		}
	}
}

func TestChannelParameterClamping(t *testing.T) {
	if !AmplitudeDamping(-0.5).Valid(1e-12) {
		t.Error("negative gamma should clamp to a valid channel")
	}
	if !Depolarizing(2).Valid(1e-12) {
		t.Error("p>1 should clamp to a valid channel")
	}
}

func TestAmplitudeDampingDecaysExcitedState(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const trials = 3000
	gamma := 0.4
	decayed := 0
	for i := 0; i < trials; i++ {
		s := MustNewState(1)
		s.Apply1Q(0, X) // |1>
		if err := s.ApplyChannel(0, AmplitudeDamping(gamma), rng); err != nil {
			t.Fatal(err)
		}
		if s.Probability(0) > 0.99 {
			decayed++
		}
	}
	frac := float64(decayed) / trials
	if math.Abs(frac-gamma) > 0.04 {
		t.Errorf("decay fraction %.3f, want ~%.2f", frac, gamma)
	}
}

func TestAmplitudeDampingFixesGroundState(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := MustNewState(1) // |0>
	for i := 0; i < 50; i++ {
		if err := s.ApplyChannel(0, AmplitudeDamping(0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	if p := s.Probability(0); math.Abs(p-1) > 1e-9 {
		t.Errorf("ground state decayed under amplitude damping: P(0)=%g", p)
	}
}

func TestPhaseDampingErodesCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const trials = 2000
	lambda := 0.6
	// |+> under phase damping: averaged over trajectories, <X> shrinks to
	// sqrt(1-lambda). Estimate <X> = P(+) - P(-) by rotating into Z basis.
	sumX := 0.0
	for i := 0; i < trials; i++ {
		s := MustNewState(1)
		s.Apply1Q(0, H) // |+>
		if err := s.ApplyChannel(0, PhaseDamping(lambda), rng); err != nil {
			t.Fatal(err)
		}
		s.Apply1Q(0, H) // X basis -> Z basis
		z, _ := s.ExpectationZ(0)
		sumX += z
	}
	got := sumX / trials
	want := math.Sqrt(1 - lambda)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("<X> after phase damping = %.3f, want ~%.3f", got, want)
	}
}

func TestPhaseDampingPreservesPopulations(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	s := MustNewState(1)
	s.Apply1Q(0, RY(1.1)) // cos/sin populations
	p1Before := s.Probability(1)
	for i := 0; i < 30; i++ {
		if err := s.ApplyChannel(0, PhaseDamping(0.7), rng); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(s.Probability(1)-p1Before) > 1e-9 {
		t.Errorf("phase damping changed populations: %g -> %g", p1Before, s.Probability(1))
	}
}

func TestDepolarizingDrivesToMaximallyMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const trials = 4000
	ones := 0
	for i := 0; i < trials; i++ {
		s := MustNewState(1) // |0>
		if err := s.ApplyChannel(0, Depolarizing(0.75), rng); err != nil {
			t.Fatal(err)
		}
		// p=0.75 is the fully-depolarizing point: outcome is uniform.
		out, err := s.MeasureQubit(0, rng)
		if err != nil {
			t.Fatal(err)
		}
		ones += out
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.375) > 0.03 {
		// p/3 each for X and Y flip |0>→|1|; expected P(1) = 2*0.25 = 0.5?
		// For the Kraus form used, P(1) = 2p/3 · ... compute directly:
		// |0> branches: I (1-p), X (p/3 →|1>), Y (p/3 →|1>), Z (p/3 →|0>).
		// P(1) = 2p/3 = 0.5 at p = 0.75.
		t.Logf("note: measured %.3f", frac)
	}
	want := 2.0 * 0.75 / 3
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("P(1) after depolarizing(0.75) on |0> = %.3f, want ~%.3f", frac, want)
	}
}

func TestApplyChannelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := MustNewState(2)
	if err := s.ApplyChannel(5, AmplitudeDamping(0.1), rng); err == nil {
		t.Error("expected range error")
	}
	if err := s.ApplyChannel(0, Channel{Name: "empty"}, rng); err == nil {
		t.Error("expected error for empty channel")
	}
}

// Trajectories preserve normalization regardless of channel or state.
func TestTrajectoryNormPreservationProperty(t *testing.T) {
	f := func(seed int64, gRaw, lRaw, pRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := math.Abs(math.Mod(gRaw, 1))
		l := math.Abs(math.Mod(lRaw, 1))
		p := math.Abs(math.Mod(pRaw, 1))
		n := 1 + rng.Intn(4)
		s := randomState(n, rng)
		chans := []Channel{AmplitudeDamping(g), PhaseDamping(l), Depolarizing(p)}
		for i := 0; i < 8; i++ {
			if err := s.ApplyChannel(rng.Intn(n), chans[rng.Intn(3)], rng); err != nil {
				return false
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadoutModelCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := &ReadoutModel{P10: []float64{1, 0}, P01: []float64{0, 1}}
	// Qubit 0 always flips 0->1; qubit 1 always flips 1->0.
	got := m.Corrupt(0b10, rng)
	if got != 0b01 {
		t.Errorf("Corrupt(10) = %02b, want 01", got)
	}
}

func TestReadoutModelNilPassthrough(t *testing.T) {
	var m *ReadoutModel
	rng := rand.New(rand.NewSource(1))
	if got := m.Corrupt(5, rng); got != 5 {
		t.Errorf("nil model should pass through, got %d", got)
	}
	if f := m.AssignmentFidelity(0); f != 1 {
		t.Errorf("nil model fidelity = %g, want 1", f)
	}
}

func TestUniformReadoutStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	eps := 0.05
	m := UniformReadout(4, eps)
	if got := m.AssignmentFidelity(2); math.Abs(got-(1-eps)) > 1e-12 {
		t.Errorf("assignment fidelity = %g, want %g", got, 1-eps)
	}
	const trials = 20000
	flips := 0
	for i := 0; i < trials; i++ {
		if m.Corrupt(0, rng)&1 != 0 {
			flips++
		}
	}
	frac := float64(flips) / trials
	if math.Abs(frac-eps) > 0.01 {
		t.Errorf("flip rate %.4f, want ~%.2f", frac, eps)
	}
}

func TestAssignmentFidelityOutOfRange(t *testing.T) {
	m := UniformReadout(2, 0.1)
	if f := m.AssignmentFidelity(10); f != 1 {
		t.Errorf("out-of-range qubit fidelity = %g, want 1", f)
	}
}

// TestKrausForkPrimitivesMatchChannel checks the shot-branching
// decomposition of ApplyChannel: computing every branch weight with
// KrausWeight, picking a branch, and applying it with ApplyKraus must
// reproduce the channel's trajectory ensemble — weights sum to 1 (trace
// preservation) and each branch lands on a normalized state.
func TestKrausForkPrimitivesMatchChannel(t *testing.T) {
	base := MustNewState(3)
	if err := base.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	if err := base.Apply2Q(0, 1, CZ); err != nil {
		t.Fatal(err)
	}
	ch := Compose(Depolarizing(0.1), AmplitudeDamping(0.2))
	total := 0.0
	for _, k := range ch.Kraus {
		w, err := base.KrausWeight(1, k)
		if err != nil {
			t.Fatal(err)
		}
		if w < 0 {
			t.Fatalf("negative branch weight %g", w)
		}
		total += w
		if w < 1e-12 {
			continue
		}
		fork := base.Clone()
		if err := fork.ApplyKraus(1, k, w); err != nil {
			t.Fatal(err)
		}
		if n := fork.Norm(); math.Abs(n-1) > 1e-9 {
			t.Errorf("fork norm = %g after ApplyKraus, want 1", n)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("branch weights sum to %g, want 1 (trace preservation)", total)
	}
	if err := base.Clone().ApplyKraus(0, I2, 0); err == nil {
		t.Error("ApplyKraus accepted a zero branch weight")
	}
	if _, err := base.KrausWeight(7, I2); err == nil {
		t.Error("KrausWeight accepted an out-of-range qubit")
	}
}

// TestAcquireStateCopyForksIndependently checks the pooled fork primitive:
// the copy matches the source and mutating one leaves the other alone.
func TestAcquireStateCopyForksIndependently(t *testing.T) {
	src := MustNewState(2)
	if err := src.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	fork, err := AcquireStateCopy(src)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseState(fork)
	if f, err := fork.Fidelity(src); err != nil || math.Abs(f-1) > 1e-12 {
		t.Fatalf("fork fidelity = %g (%v), want 1", f, err)
	}
	if err := fork.Apply1Q(1, X); err != nil {
		t.Fatal(err)
	}
	if p := src.Probability(2); p != 0 {
		t.Errorf("mutating the fork changed the source: P(|10>) = %g", p)
	}
	if err := fork.Set(src); err != nil {
		t.Fatal(err)
	}
	if f, _ := fork.Fidelity(src); math.Abs(f-1) > 1e-12 {
		t.Errorf("Set did not restore the checkpoint: fidelity %g", f)
	}
	if err := fork.Set(MustNewState(3)); err == nil {
		t.Error("Set accepted a size-mismatched source")
	}
	if _, err := AcquireStateCopy(nil); err == nil {
		t.Error("AcquireStateCopy accepted nil")
	}
}
