package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ReducedDensity1Q computes the single-qubit reduced density matrix of
// qubit q by tracing out the rest of the register. Health-check analyses
// use it to verify entanglement structure: a GHZ member qubit is maximally
// mixed locally even though the global state is pure.
func (s *State) ReducedDensity1Q(q int) (Matrix2, error) {
	if err := s.checkQubit(q); err != nil {
		return Matrix2{}, err
	}
	bit := 1 << uint(q)
	var rho Matrix2
	for i0 := 0; i0 < len(s.amps); i0++ {
		if i0&bit != 0 {
			continue
		}
		i1 := i0 | bit
		a0, a1 := s.amps[i0], s.amps[i1]
		rho[0][0] += a0 * cmplx.Conj(a0)
		rho[0][1] += a0 * cmplx.Conj(a1)
		rho[1][0] += a1 * cmplx.Conj(a0)
		rho[1][1] += a1 * cmplx.Conj(a1)
	}
	return rho, nil
}

// Purity1Q returns Tr(rho_q²) for the reduced state of qubit q: 1 for a
// product state, 0.5 for a maximally entangled qubit.
func (s *State) Purity1Q(q int) (float64, error) {
	rho, err := s.ReducedDensity1Q(q)
	if err != nil {
		return 0, err
	}
	p := real(rho[0][0])*real(rho[0][0]) + real(rho[1][1])*real(rho[1][1])
	off := rho[0][1] * rho[1][0]
	return p + 2*real(off), nil
}

// EntanglementEntropy1Q returns the von Neumann entropy (in bits) of qubit
// q's reduced state: 0 for a product state, 1 for maximal entanglement.
func (s *State) EntanglementEntropy1Q(q int) (float64, error) {
	rho, err := s.ReducedDensity1Q(q)
	if err != nil {
		return 0, err
	}
	// Eigenvalues of a Hermitian 2x2: mean ± sqrt(mean² - det).
	tr := real(rho[0][0]) + real(rho[1][1])
	det := real(rho[0][0]*rho[1][1] - rho[0][1]*rho[1][0])
	mean := tr / 2
	disc := mean*mean - det
	if disc < 0 {
		disc = 0
	}
	r := math.Sqrt(disc)
	entropy := 0.0
	for _, lam := range []float64{mean + r, mean - r} {
		if lam > 1e-15 {
			entropy -= lam * math.Log2(lam)
		}
	}
	return entropy, nil
}

// ValidateReduced checks the reduced matrix is a physical state within tol.
func ValidateReduced(rho Matrix2, tol float64) error {
	tr := real(rho[0][0]) + real(rho[1][1])
	if math.Abs(tr-1) > tol {
		return fmt.Errorf("quantum: reduced trace %g != 1", tr)
	}
	if real(rho[0][0]) < -tol || real(rho[1][1]) < -tol {
		return fmt.Errorf("quantum: negative population in reduced state")
	}
	if cmplx.Abs(rho[0][1]-cmplx.Conj(rho[1][0])) > tol {
		return fmt.Errorf("quantum: reduced state not Hermitian")
	}
	return nil
}
