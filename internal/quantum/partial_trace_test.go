package quantum

import (
	"math"
	"testing"
)

func TestReducedDensityProductState(t *testing.T) {
	s := MustNewState(3)
	s.Apply1Q(1, X) // |010>, fully separable
	rho, err := s.ReducedDensity1Q(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReduced(rho, 1e-12); err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(rho[1][1])-1) > 1e-12 {
		t.Errorf("qubit 1 should be |1><1|, got P(1)=%g", real(rho[1][1]))
	}
	p, err := s.Purity1Q(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("product-state purity = %g, want 1", p)
	}
	e, err := s.EntanglementEntropy1Q(1)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-10 {
		t.Errorf("product-state entropy = %g, want 0", e)
	}
}

func TestReducedDensityGHZMemberIsMaximallyMixed(t *testing.T) {
	s := MustNewState(4)
	if err := PrepareGHZ(s); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		rho, err := s.ReducedDensity1Q(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateReduced(rho, 1e-12); err != nil {
			t.Fatal(err)
		}
		if math.Abs(real(rho[0][0])-0.5) > 1e-12 {
			t.Errorf("GHZ qubit %d P(0) = %g, want 0.5", q, real(rho[0][0]))
		}
		p, _ := s.Purity1Q(q)
		if math.Abs(p-0.5) > 1e-12 {
			t.Errorf("GHZ qubit %d purity = %g, want 0.5", q, p)
		}
		e, _ := s.EntanglementEntropy1Q(q)
		if math.Abs(e-1) > 1e-10 {
			t.Errorf("GHZ qubit %d entropy = %g bits, want 1", q, e)
		}
	}
}

func TestReducedDensityPartialEntanglement(t *testing.T) {
	// RY(θ) then CNOT: entanglement grows with θ from 0 to π/2.
	entropyAt := func(theta float64) float64 {
		s := MustNewState(2)
		s.Apply1Q(0, RY(theta))
		s.Apply2Q(0, 1, CNOT01)
		e, err := s.EntanglementEntropy1Q(0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1, e2, e3 := entropyAt(0.3), entropyAt(0.9), entropyAt(math.Pi/2)
	if !(e1 < e2 && e2 < e3) {
		t.Errorf("entropy not monotone in θ: %g, %g, %g", e1, e2, e3)
	}
	if math.Abs(e3-1) > 1e-10 {
		t.Errorf("Bell-state entropy = %g, want 1", e3)
	}
}

func TestReducedDensityValidation(t *testing.T) {
	s := MustNewState(2)
	if _, err := s.ReducedDensity1Q(5); err == nil {
		t.Error("out-of-range qubit should fail")
	}
	if _, err := s.Purity1Q(-1); err == nil {
		t.Error("negative qubit should fail")
	}
	if _, err := s.EntanglementEntropy1Q(9); err == nil {
		t.Error("out-of-range entropy should fail")
	}
	bad := Matrix2{{complex(0.7, 0), 0}, {0, complex(0.7, 0)}}
	if err := ValidateReduced(bad, 1e-9); err == nil {
		t.Error("trace != 1 should fail validation")
	}
}
