package quantum

import (
	"fmt"
	"sync"
)

// This file is the flat-program substrate of the compiled-circuit execution
// engine: a Program is a circuit lowered to precomputed gate matrices that
// apply with zero per-gate decoding, and the state pool recycles amplitude
// buffers so repeated shots allocate nothing. The compile step itself lives
// in internal/circuit (it needs the gate IR); the device executor composes
// both with calibration-derived noise.

// ProgOpKind discriminates the operation classes a Program can hold.
type ProgOpKind uint8

const (
	// ProgOp1Q applies M2 to qubit Q1.
	ProgOp1Q ProgOpKind = iota
	// ProgOp2Q applies M4 to qubits (Q1, Q2) with Q1 the low bit.
	ProgOp2Q
	// ProgOpToffoli applies CCX with controls Q1, Q2 and target Q3.
	ProgOpToffoli
)

// ProgOp is one lowered operation: the unitary is precomputed, so executing
// it is a single kernel call with no gate-name dispatch or matrix
// construction.
type ProgOp struct {
	Kind       ProgOpKind
	Q1, Q2, Q3 int
	M2         Matrix2
	M4         Matrix4
}

// Program is a circuit lowered to a flat list of precomputed operations over
// a fixed register — the unit the execution engine compiles once per job and
// runs once per shot.
type Program struct {
	NumQubits int
	Ops       []ProgOp
}

// RunOn applies the program's operations, in order, to st. The state must
// have at least NumQubits qubits.
func (p *Program) RunOn(st *State) error {
	if st.NumQubits() < p.NumQubits {
		return fmt.Errorf("quantum: state has %d qubits, program needs %d", st.NumQubits(), p.NumQubits)
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		var err error
		switch op.Kind {
		case ProgOp1Q:
			err = st.Apply1Q(op.Q1, op.M2)
		case ProgOp2Q:
			err = st.Apply2Q(op.Q1, op.Q2, op.M4)
		case ProgOpToffoli:
			err = st.ApplyToffoli(op.Q1, op.Q2, op.Q3)
		default:
			err = fmt.Errorf("quantum: unknown program op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("program op %d: %w", i, err)
		}
	}
	return nil
}

// statePools recycles State buffers by qubit count. A 2^n amplitude slice is
// the dominant allocation of a simulated shot; the shot loop acquires,
// resets in place, and releases instead of allocating per shot.
var statePools [MaxQubits + 1]sync.Pool

// AcquireState returns a pooled n-qubit state reset to |00...0>, allocating
// only when the pool is empty. Release with ReleaseState when done.
func AcquireState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("quantum: qubit count %d outside [1, %d]", n, MaxQubits)
	}
	if v := statePools[n].Get(); v != nil {
		st := v.(*State)
		st.Reset()
		return st, nil
	}
	return NewState(n)
}

// AcquireStateCopy returns a pooled state initialized as a copy of src —
// the fork primitive of the shot-branching engine: a trajectory subtree
// that splits off a shared Kraus prefix gets its own amplitudes without a
// fresh 2^n allocation.
func AcquireStateCopy(src *State) (*State, error) {
	if src == nil {
		return nil, fmt.Errorf("quantum: cannot copy nil state")
	}
	if v := statePools[src.n].Get(); v != nil {
		st := v.(*State)
		copy(st.amps, src.amps)
		return st, nil
	}
	return src.Clone(), nil
}

// ReleaseState returns a state to the pool for reuse. The caller must not
// touch st afterwards. Releasing nil is a no-op.
func ReleaseState(st *State) {
	if st == nil {
		return
	}
	statePools[st.n].Put(st)
}
