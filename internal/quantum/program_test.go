package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func TestProgramRunOnMatchesDirectApplication(t *testing.T) {
	// H(0), CNOT(0,1), Toffoli(0,1,2) via a program vs direct kernel calls.
	p := &Program{
		NumQubits: 3,
		Ops: []ProgOp{
			{Kind: ProgOp1Q, Q1: 0, M2: H},
			{Kind: ProgOp2Q, Q1: 0, Q2: 1, M4: CNOT01},
			{Kind: ProgOpToffoli, Q1: 0, Q2: 1, Q3: 2},
		},
	}
	got := MustNewState(3)
	if err := p.RunOn(got); err != nil {
		t.Fatal(err)
	}
	want := MustNewState(3)
	if err := want.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	if err := want.Apply2Q(0, 1, CNOT01); err != nil {
		t.Fatal(err)
	}
	if err := want.ApplyToffoli(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	f, err := got.Fidelity(want)
	if err != nil {
		t.Fatal(err)
	}
	if f < 1-1e-12 {
		t.Errorf("program fidelity vs direct application = %g, want ~1", f)
	}
}

func TestProgramRunOnValidates(t *testing.T) {
	p := &Program{NumQubits: 3, Ops: []ProgOp{{Kind: ProgOp1Q, Q1: 0, M2: X}}}
	if err := p.RunOn(MustNewState(2)); err == nil {
		t.Error("expected error for undersized state")
	}
	bad := &Program{NumQubits: 2, Ops: []ProgOp{{Kind: ProgOpKind(99)}}}
	if err := bad.RunOn(MustNewState(2)); err == nil {
		t.Error("expected error for unknown op kind")
	}
}

func TestStatePoolResetsOnAcquire(t *testing.T) {
	st, err := AcquireState(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply1Q(0, X); err != nil {
		t.Fatal(err)
	}
	ReleaseState(st)
	st2, err := AcquireState(3)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseState(st2)
	if p := st2.Probability(0); math.Abs(p-1) > 1e-12 {
		t.Errorf("pooled state not reset: P(|000>) = %g", p)
	}
	if _, err := AcquireState(0); err == nil {
		t.Error("expected error for 0 qubits")
	}
	ReleaseState(nil) // must not panic
}

func TestProbabilitiesIntoReusesBuffer(t *testing.T) {
	st := MustNewState(2)
	if err := st.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	want := st.Probabilities()
	buf := make([]float64, 0, 8)
	got := st.ProbabilitiesInto(buf)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	if &got[0] != &buf[:1][0] {
		t.Error("ProbabilitiesInto did not reuse the provided buffer")
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("prob[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Undersized buffer: must allocate, not panic.
	if out := st.ProbabilitiesInto(make([]float64, 1)); len(out) != 4 {
		t.Errorf("undersized dst: len = %d, want 4", len(out))
	}
}

func TestSampleBitstringMatchesDistribution(t *testing.T) {
	st := MustNewState(3)
	if err := PrepareGHZ(st); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const shots = 4000
	counts := map[int]int{}
	for i := 0; i < shots; i++ {
		counts[st.SampleBitstring(rng)]++
	}
	if len(counts) != 2 {
		t.Fatalf("GHZ single-draw sampling hit %d outcomes, want 2: %v", len(counts), counts)
	}
	f0 := float64(counts[0]) / shots
	if f0 < 0.45 || f0 > 0.55 {
		t.Errorf("P(|000>) = %.3f, want ~0.5", f0)
	}
}

func TestSampleBitstringAllocFree(t *testing.T) {
	st := MustNewState(6)
	if err := PrepareGHZ(st); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	allocs := testing.AllocsPerRun(200, func() {
		st.SampleBitstring(rng)
	})
	if allocs != 0 {
		t.Errorf("SampleBitstring allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSampleBitstringsScratchReuse(t *testing.T) {
	st := MustNewState(4)
	if err := PrepareGHZ(st); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	st.SampleBitstrings(1, rng) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		st.SampleBitstrings(1, rng)
	})
	// Only the 1-element result slice may allocate.
	if allocs > 1 {
		t.Errorf("SampleBitstrings(1) allocates %.1f objects/op, want <= 1", allocs)
	}
}
