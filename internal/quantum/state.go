// Package quantum implements a dense state-vector simulator for up to ~24
// qubits. It is the computational stand-in for the paper's 20-qubit
// superconducting QPU and for the "digital twin" emulator that LRZ used for
// user onboarding (§4): circuits go in, measured bitstrings come out, and a
// noise layer (quantum-trajectory Kraus channels plus readout confusion)
// reproduces the imperfections that calibration exists to manage.
//
// Gate kernels fan out across goroutines for large states, so 20-qubit
// workloads use the host's cores; small states stay single-threaded to avoid
// scheduling overhead.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"sync"
)

// MaxQubits bounds state allocation: 2^26 amplitudes = 1 GiB of complex128.
const MaxQubits = 26

// State is a pure quantum state of n qubits stored as 2^n complex amplitudes.
// Qubit 0 is the least significant bit of the basis-state index.
type State struct {
	n    int
	amps []complex128
	// probScratch is a lazily-allocated 2^n buffer reused by the sampling
	// paths (ProbabilitiesInto callers, cumulative distributions), so
	// repeated sampling of a long-lived (pooled) state allocates nothing.
	probScratch []float64
	// aliasScratch is the reusable Walker sampler of the bulk-sampling path;
	// like probScratch it amortizes to zero allocations on pooled states.
	aliasScratch AliasTable
}

// NewState returns the n-qubit |00...0> state.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("quantum: qubit count %d outside [1, %d]", n, MaxQubits)
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s, nil
}

// MustNewState is NewState for statically-valid sizes; it panics on error.
func MustNewState(n int) *State {
	s, err := NewState(n)
	if err != nil {
		panic(err)
	}
	return s
}

// NumQubits returns the number of qubits.
func (s *State) NumQubits() int { return s.n }

// Dim returns the Hilbert-space dimension 2^n.
func (s *State) Dim() int { return len(s.amps) }

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx int) complex128 { return s.amps[idx] }

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amps: make([]complex128, len(s.amps))}
	copy(c.amps, s.amps)
	return c
}

// Set overwrites s with a copy of src's amplitudes. It is the
// checkpoint-restore primitive of the shot-branching engine's per-shot
// replay fallback: the replay scratch state is rewound to the fork point
// without touching the pool.
func (s *State) Set(src *State) error {
	if s.n != src.n {
		return fmt.Errorf("quantum: cannot set %d-qubit state from %d-qubit source", s.n, src.n)
	}
	copy(s.amps, src.amps)
	return nil
}

// Reset returns the state to |00...0>.
func (s *State) Reset() {
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[0] = 1
}

// Norm returns the 2-norm of the state (1 for a normalized state).
func (s *State) Norm() float64 {
	sum := 0.0
	for _, a := range s.amps {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Normalize rescales the state to unit norm. It returns an error if the
// state has (numerically) zero norm.
func (s *State) Normalize() error {
	n := s.Norm()
	if n < 1e-300 {
		return fmt.Errorf("quantum: cannot normalize zero state")
	}
	inv := complex(1/n, 0)
	for i := range s.amps {
		s.amps[i] *= inv
	}
	return nil
}

// InnerProduct returns <s|other>.
func (s *State) InnerProduct(other *State) (complex128, error) {
	if s.n != other.n {
		return 0, fmt.Errorf("quantum: inner product between %d- and %d-qubit states", s.n, other.n)
	}
	var sum complex128
	for i := range s.amps {
		sum += cmplx.Conj(s.amps[i]) * other.amps[i]
	}
	return sum, nil
}

// Fidelity returns |<s|other>|^2.
func (s *State) Fidelity(other *State) (float64, error) {
	ip, err := s.InnerProduct(other)
	if err != nil {
		return 0, err
	}
	m := cmplx.Abs(ip)
	return m * m, nil
}

// Probability returns |amp|^2 of basis state idx.
func (s *State) Probability(idx int) float64 {
	a := s.amps[idx]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full probability vector. The slice is freshly
// allocated; use ProbabilitiesInto on hot paths.
func (s *State) Probabilities() []float64 {
	return s.ProbabilitiesInto(nil)
}

// ProbabilitiesInto fills dst with the full probability vector and returns
// it, reusing dst's backing array when its capacity suffices (allocating
// otherwise). The scratch-buffer variant exists so repeated sampling stops
// allocating 2^n floats per call.
func (s *State) ProbabilitiesInto(dst []float64) []float64 {
	if cap(dst) < len(s.amps) {
		dst = make([]float64, len(s.amps))
	}
	dst = dst[:len(s.amps)]
	for i, a := range s.amps {
		dst[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return dst
}

// scratchProbs returns the state's reusable probability buffer, filled.
func (s *State) scratchProbs() []float64 {
	s.probScratch = s.ProbabilitiesInto(s.probScratch)
	return s.probScratch
}

// parallelThreshold is the state size above which gate kernels fan out
// across goroutines. 2^14 amplitudes keeps goroutine overhead negligible.
const parallelThreshold = 1 << 14

// numWorkers returns the fan-out width for the current host.
func numWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// checkQubit validates a qubit index.
func (s *State) checkQubit(q int) error {
	if q < 0 || q >= s.n {
		return fmt.Errorf("quantum: qubit %d out of range [0, %d)", q, s.n)
	}
	return nil
}

// Apply1Q applies a single-qubit unitary m (row-major [ [m00 m01], [m10 m11] ])
// to qubit q.
func (s *State) Apply1Q(q int, m Matrix2) error {
	if err := s.checkQubit(q); err != nil {
		return err
	}
	bit := 1 << uint(q)
	dim := len(s.amps)
	half := dim / 2
	if dim < parallelThreshold {
		// Small states run the kernel inline, in a function free of escaping
		// closures: an fanned-out variant in the same frame would force the
		// matrix to the heap on every call, which dominates the pooled,
		// otherwise allocation-free shot loop.
		for base := 0; base < half; base++ {
			// Iterate over indices with qubit q == 0 only.
			i0 := ((base &^ (bit - 1)) << 1) | (base & (bit - 1))
			i1 := i0 | bit
			a0, a1 := s.amps[i0], s.amps[i1]
			s.amps[i0] = m[0][0]*a0 + m[0][1]*a1
			s.amps[i1] = m[1][0]*a0 + m[1][1]*a1
		}
		return nil
	}
	s.apply1QParallel(bit, half, m)
	return nil
}

// apply1QParallel fans the single-qubit kernel out across workers. It lives
// in its own frame so the escaping closure only costs on large states.
func (s *State) apply1QParallel(bit, half int, m Matrix2) {
	parallelFor(half, func(lo, hi int) {
		for base := lo; base < hi; base++ {
			i0 := ((base &^ (bit - 1)) << 1) | (base & (bit - 1))
			i1 := i0 | bit
			a0, a1 := s.amps[i0], s.amps[i1]
			s.amps[i0] = m[0][0]*a0 + m[0][1]*a1
			s.amps[i1] = m[1][0]*a0 + m[1][1]*a1
		}
	})
}

// Apply2Q applies a two-qubit unitary m (4x4, row-major, basis order
// |q2 q1> = |00>,|01>,|10>,|11> with q1 the low bit) to qubits q1 and q2.
func (s *State) Apply2Q(q1, q2 int, m Matrix4) error {
	if err := s.checkQubit(q1); err != nil {
		return err
	}
	if err := s.checkQubit(q2); err != nil {
		return err
	}
	if q1 == q2 {
		return fmt.Errorf("quantum: two-qubit gate needs distinct qubits, got %d twice", q1)
	}
	b1 := 1 << uint(q1)
	b2 := 1 << uint(q2)
	lowBit, highBit := b1, b2
	if lowBit > highBit {
		lowBit, highBit = highBit, lowBit
	}
	dim := len(s.amps)
	quarter := dim / 4
	if dim < parallelThreshold {
		// Small states run the kernel inline (see Apply1Q): the parallel
		// closure would heap-allocate per gate application.
		applySmall2Q(s.amps, &m, b1, b2, lowBit, highBit, quarter)
		return nil
	}
	s.apply2QParallel(b1, b2, lowBit, highBit, quarter, m)
	return nil
}

// apply2QParallel fans the two-qubit kernel out across workers, isolated in
// its own frame so the closure's heap capture of m only costs on large
// states.
func (s *State) apply2QParallel(b1, b2, lowBit, highBit, quarter int, m Matrix4) {
	parallelFor(quarter, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			// Expand k into an index with zeros at both gate-qubit positions.
			i := k
			low := i & (lowBit - 1)
			i = (i &^ (lowBit - 1)) << 1
			mid := i & (highBit - 1)
			i = (i &^ (highBit - 1)) << 1
			base := i | mid | low

			i00 := base
			i01 := base | b1
			i10 := base | b2
			i11 := base | b1 | b2
			a00, a01, a10, a11 := s.amps[i00], s.amps[i01], s.amps[i10], s.amps[i11]
			s.amps[i00] = m[0][0]*a00 + m[0][1]*a01 + m[0][2]*a10 + m[0][3]*a11
			s.amps[i01] = m[1][0]*a00 + m[1][1]*a01 + m[1][2]*a10 + m[1][3]*a11
			s.amps[i10] = m[2][0]*a00 + m[2][1]*a01 + m[2][2]*a10 + m[2][3]*a11
			s.amps[i11] = m[3][0]*a00 + m[3][1]*a01 + m[3][2]*a10 + m[3][3]*a11
		}
	})
}

// applySmall2Q is the inline small-state two-qubit kernel: a plain function
// instead of the escaping closure above, so per-gate application allocates
// nothing on the pooled shot loop.
func applySmall2Q(amps []complex128, m *Matrix4, b1, b2, lowBit, highBit, quarter int) {
	for k := 0; k < quarter; k++ {
		i := k
		low := i & (lowBit - 1)
		i = (i &^ (lowBit - 1)) << 1
		mid := i & (highBit - 1)
		i = (i &^ (highBit - 1)) << 1
		base := i | mid | low

		i00 := base
		i01 := base | b1
		i10 := base | b2
		i11 := base | b1 | b2
		a00, a01, a10, a11 := amps[i00], amps[i01], amps[i10], amps[i11]
		amps[i00] = m[0][0]*a00 + m[0][1]*a01 + m[0][2]*a10 + m[0][3]*a11
		amps[i01] = m[1][0]*a00 + m[1][1]*a01 + m[1][2]*a10 + m[1][3]*a11
		amps[i10] = m[2][0]*a00 + m[2][1]*a01 + m[2][2]*a10 + m[2][3]*a11
		amps[i11] = m[3][0]*a00 + m[3][1]*a01 + m[3][2]*a10 + m[3][3]*a11
	}
}

// parallelFor splits [0, n) across workers and waits for completion.
func parallelFor(n int, f func(lo, hi int)) {
	w := numWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ApplyToffoli applies the CCX gate: the target bit flips on basis states
// where both control bits are set. Implemented as a direct amplitude
// permutation — cheaper and simpler than an 8x8 matrix kernel.
func (s *State) ApplyToffoli(c1, c2, t int) error {
	for _, q := range []int{c1, c2, t} {
		if err := s.checkQubit(q); err != nil {
			return err
		}
	}
	if c1 == c2 || c1 == t || c2 == t {
		return fmt.Errorf("quantum: Toffoli needs three distinct qubits, got %d,%d,%d", c1, c2, t)
	}
	b1 := 1 << uint(c1)
	b2 := 1 << uint(c2)
	bt := 1 << uint(t)
	swap := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&b1 != 0 && i&b2 != 0 && i&bt == 0 {
				j := i | bt
				s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
			}
		}
	}
	if len(s.amps) < parallelThreshold {
		swap(0, len(s.amps))
		return nil
	}
	parallelFor(len(s.amps), swap)
	return nil
}

// ExpectationZ returns <Z_q>, the expectation of Pauli-Z on qubit q.
func (s *State) ExpectationZ(q int) (float64, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	bit := 1 << uint(q)
	sum := 0.0
	for i, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if i&bit == 0 {
			sum += p
		} else {
			sum -= p
		}
	}
	return sum, nil
}

// MeasureQubit performs a projective Z measurement of qubit q, collapsing the
// state, and returns the outcome (0 or 1).
func (s *State) MeasureQubit(q int, rng *rand.Rand) (int, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	bit := 1 << uint(q)
	p0 := 0.0
	for i, a := range s.amps {
		if i&bit == 0 {
			p0 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 1
	if rng.Float64() < p0 {
		outcome = 0
	}
	keepZero := outcome == 0
	norm := p0
	if !keepZero {
		norm = 1 - p0
	}
	if norm < 1e-300 {
		return 0, fmt.Errorf("quantum: measurement branch has zero probability")
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range s.amps {
		zero := i&bit == 0
		if zero == keepZero {
			s.amps[i] *= inv
		} else {
			s.amps[i] = 0
		}
	}
	return outcome, nil
}

// aliasMinShots is the bulk-sampling crossover: building the Walker alias
// table costs a few passes over 2^n buckets, so tiny draws stay on the
// cumulative table + binary search.
const aliasMinShots = 16

// SampleBitstrings draws shots measurement outcomes from the state without
// collapsing it. Each outcome is the integer whose bit q is qubit q's result.
// Only the returned slice is allocated: the sampling tables live in the
// state's reusable scratch buffers.
func (s *State) SampleBitstrings(shots int, rng *rand.Rand) []int {
	return s.SampleBitstringsInto(nil, shots, rng)
}

// SampleBitstringsInto is SampleBitstrings reusing dst's backing array when
// its capacity suffices, so repeated bulk sampling (the shot-branching
// leaves) allocates nothing. Each sample consumes exactly one rng draw on
// either internal path: O(1) Walker alias sampling for bulk draws, the
// cumulative table below the crossover.
func (s *State) SampleBitstringsInto(dst []int, shots int, rng *rand.Rand) []int {
	if cap(dst) < shots {
		dst = make([]int, shots)
	}
	dst = dst[:shots]
	if shots >= aliasMinShots {
		if err := s.aliasScratch.Init(s.scratchProbs()); err == nil {
			for k := range dst {
				dst[k] = s.aliasScratch.Sample(rng)
			}
			return dst
		}
		// Init only fails on a degenerate (zero-norm) state; fall through to
		// the cumulative path, which keeps the historical behaviour there.
	}
	cum := s.scratchProbs()
	acc := 0.0
	for i, p := range cum {
		acc += p
		cum[i] = acc
	}
	for k := range dst {
		dst[k] = sampleCumulative(cum, acc, rng)
	}
	return dst
}

// SampleBitstring draws one measurement outcome from the state without
// collapsing it, allocating nothing — the single-sample primitive of the
// per-shot execution loop, where the state changes between draws and a
// cumulative table would be rebuilt anyway. It consumes exactly one rng
// draw, like one SampleBitstrings sample.
func (s *State) SampleBitstring(rng *rand.Rand) int {
	total := 0.0
	for _, a := range s.amps {
		total += real(a)*real(a) + imag(a)*imag(a)
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return i
		}
	}
	return len(s.amps) - 1 // rounding pushed r past the total weight
}

// sampleCumulative binary-searches a cumulative weight table for one draw.
func sampleCumulative(cum []float64, total float64, rng *rand.Rand) int {
	r := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Histogram counts sampled outcomes into a map keyed by basis index.
func Histogram(samples []int) map[int]int {
	h := make(map[int]int)
	for _, s := range samples {
		h[s]++
	}
	return h
}

// FormatBitstring renders basis index idx as an n-character bitstring with
// qubit 0 rightmost (e.g. idx=1, n=3 -> "001").
func FormatBitstring(idx, n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if idx&(1<<uint(n-1-i)) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
