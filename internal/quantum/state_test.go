package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("expected error for 0 qubits")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("expected error above MaxQubits")
	}
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumQubits() != 3 || s.Dim() != 8 {
		t.Errorf("got n=%d dim=%d, want 3, 8", s.NumQubits(), s.Dim())
	}
	if s.Probability(0) != 1 {
		t.Error("fresh state should be |000>")
	}
}

func TestMustNewStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewState(-1)
}

func TestApply1QValidation(t *testing.T) {
	s := MustNewState(2)
	if err := s.Apply1Q(-1, X); err == nil {
		t.Error("expected error for negative qubit")
	}
	if err := s.Apply1Q(2, X); err == nil {
		t.Error("expected error for out-of-range qubit")
	}
}

func TestApply2QValidation(t *testing.T) {
	s := MustNewState(2)
	if err := s.Apply2Q(0, 0, CZ); err == nil {
		t.Error("expected error for duplicate qubits")
	}
	if err := s.Apply2Q(0, 5, CZ); err == nil {
		t.Error("expected error for out-of-range qubit")
	}
}

func TestXFlipsQubit(t *testing.T) {
	s := MustNewState(3)
	if err := s.Apply1Q(1, X); err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(0b010); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(|010>) = %g, want 1", p)
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := MustNewState(1)
	if err := s.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(1)-0.5) > 1e-12 {
		t.Errorf("H|0> probabilities = %g, %g, want 0.5 each", s.Probability(0), s.Probability(1))
	}
	// H twice is identity.
	if err := s.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-1) > 1e-12 {
		t.Error("HH should be identity")
	}
}

func TestBellState(t *testing.T) {
	s := MustNewState(2)
	if err := s.Apply1Q(0, H); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply2Q(0, 1, CNOT01); err != nil {
		t.Fatal(err)
	}
	for idx, want := range map[int]float64{0b00: 0.5, 0b11: 0.5, 0b01: 0, 0b10: 0} {
		if p := s.Probability(idx); math.Abs(p-want) > 1e-12 {
			t.Errorf("Bell P(%02b) = %g, want %g", idx, p, want)
		}
	}
}

func TestCNOTDirections(t *testing.T) {
	// CNOT01: control = low qubit (arg 1), target = high qubit (arg 2).
	s := MustNewState(2)
	s.Apply1Q(0, X) // state |01> (qubit0 = 1)
	s.Apply2Q(0, 1, CNOT01)
	if p := s.Probability(0b11); math.Abs(p-1) > 1e-12 {
		t.Errorf("CNOT01 from |01>: P(11) = %g, want 1", p)
	}
	// CNOT10: control = high qubit, target = low qubit.
	s2 := MustNewState(2)
	s2.Apply1Q(1, X) // state |10>
	s2.Apply2Q(0, 1, CNOT10)
	if p := s2.Probability(0b11); math.Abs(p-1) > 1e-12 {
		t.Errorf("CNOT10 from |10>: P(11) = %g, want 1", p)
	}
}

func TestCZPhase(t *testing.T) {
	s := MustNewState(2)
	s.Apply1Q(0, X)
	s.Apply1Q(1, X) // |11>
	s.Apply2Q(0, 1, CZ)
	if a := s.Amplitude(0b11); cmplx.Abs(a+1) > 1e-12 {
		t.Errorf("CZ|11> amplitude = %v, want -1", a)
	}
}

func TestSWAPGate(t *testing.T) {
	s := MustNewState(2)
	s.Apply1Q(0, X) // |01>
	s.Apply2Q(0, 1, SWAP)
	if p := s.Probability(0b10); math.Abs(p-1) > 1e-12 {
		t.Errorf("SWAP|01>: P(10) = %g, want 1", p)
	}
}

func TestGHZPreparationAndFidelity(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10} {
		s := MustNewState(n)
		if err := PrepareGHZ(s); err != nil {
			t.Fatal(err)
		}
		if f := GHZFidelity(s); math.Abs(f-1) > 1e-10 {
			t.Errorf("n=%d GHZ fidelity = %g, want 1", n, f)
		}
		// Only the all-zero and all-one basis states carry weight.
		for i := 1; i < s.Dim()-1; i++ {
			if s.Probability(i) > 1e-12 {
				t.Errorf("n=%d GHZ has weight %g at %d", n, s.Probability(i), i)
			}
		}
	}
}

func TestParallelKernelMatchesSerial(t *testing.T) {
	// A 15-qubit state exceeds parallelThreshold; verify the parallel path
	// produces the same result as gate-by-gate small-state logic by
	// checking norm preservation and a known outcome.
	s := MustNewState(15)
	if err := PrepareGHZ(s); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm()-1) > 1e-10 {
		t.Errorf("norm after parallel GHZ = %g", s.Norm())
	}
	if f := GHZFidelity(s); math.Abs(f-1) > 1e-10 {
		t.Errorf("parallel GHZ fidelity = %g", f)
	}
}

// Unitarity of gate application: norm is preserved by any unitary.
func TestUnitaryPreservesNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		s := randomState(n, rng)
		gates := []Matrix2{X, Y, Z, H, S, T, RX(rng.Float64() * 6), RY(rng.Float64() * 6), RZ(rng.Float64() * 6), PRX(rng.Float64()*6, rng.Float64()*6)}
		for i := 0; i < 10; i++ {
			g := gates[rng.Intn(len(gates))]
			if err := s.Apply1Q(rng.Intn(n), g); err != nil {
				return false
			}
		}
		q1 := rng.Intn(n)
		q2 := (q1 + 1 + rng.Intn(n-1)) % n
		if err := s.Apply2Q(q1, q2, CZ); err != nil {
			return false
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomState(n int, rng *rand.Rand) *State {
	s := MustNewState(n)
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

func TestInnerProductAndFidelity(t *testing.T) {
	a := MustNewState(2)
	b := MustNewState(2)
	f, err := a.Fidelity(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-12 {
		t.Errorf("identical states fidelity = %g", f)
	}
	b.Apply1Q(0, X)
	f, _ = a.Fidelity(b)
	if f > 1e-12 {
		t.Errorf("orthogonal states fidelity = %g, want 0", f)
	}
	c := MustNewState(3)
	if _, err := a.Fidelity(c); err == nil {
		t.Error("expected dimension-mismatch error")
	}
}

func TestNormalizeZeroStateFails(t *testing.T) {
	s := MustNewState(1)
	s.amps[0] = 0
	if err := s.Normalize(); err == nil {
		t.Error("expected error normalizing zero state")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := MustNewState(2)
	c := s.Clone()
	s.Apply1Q(0, X)
	if c.Probability(0) != 1 {
		t.Error("clone mutated by original's gate")
	}
}

func TestExpectationZ(t *testing.T) {
	s := MustNewState(2)
	if z, _ := s.ExpectationZ(0); math.Abs(z-1) > 1e-12 {
		t.Errorf("<Z> of |0> = %g, want 1", z)
	}
	s.Apply1Q(0, X)
	if z, _ := s.ExpectationZ(0); math.Abs(z+1) > 1e-12 {
		t.Errorf("<Z> of |1> = %g, want -1", z)
	}
	s2 := MustNewState(1)
	s2.Apply1Q(0, H)
	if z, _ := s2.ExpectationZ(0); math.Abs(z) > 1e-12 {
		t.Errorf("<Z> of |+> = %g, want 0", z)
	}
	if _, err := s.ExpectationZ(9); err == nil {
		t.Error("expected range error")
	}
}

func TestMeasureQubitCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := MustNewState(2)
	s.Apply1Q(0, H)
	s.Apply2Q(0, 1, CNOT01)
	out, err := s.MeasureQubit(0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Bell correlations: measuring qubit 0 determines qubit 1.
	out2, err := s.MeasureQubit(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Errorf("Bell measurement outcomes differ: %d vs %d", out, out2)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("post-measurement norm = %g", s.Norm())
	}
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := MustNewState(1)
		s.Apply1Q(0, H)
		out, err := s.MeasureQubit(0, rng)
		if err != nil {
			t.Fatal(err)
		}
		ones += out
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("H|0> measurement gave 1 at rate %.3f, want ~0.5", frac)
	}
}

func TestSampleBitstrings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := MustNewState(3)
	PrepareGHZ(s)
	samples := s.SampleBitstrings(4000, rng)
	if len(samples) != 4000 {
		t.Fatalf("got %d samples", len(samples))
	}
	h := Histogram(samples)
	if len(h) != 2 {
		t.Fatalf("GHZ sampling produced %d distinct outcomes, want 2: %v", len(h), h)
	}
	frac := float64(h[0]) / 4000
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("P(000) sampled at %.3f, want ~0.5", frac)
	}
	// Sampling must not collapse the state.
	if f := GHZFidelity(s); math.Abs(f-1) > 1e-12 {
		t.Error("sampling collapsed the state")
	}
}

func TestHistogramConservesShots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		s := randomState(n, rng)
		shots := 100 + rng.Intn(400)
		h := Histogram(s.SampleBitstrings(shots, rng))
		total := 0
		for _, c := range h {
			total += c
		}
		return total == shots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBitstring(t *testing.T) {
	cases := []struct {
		idx, n int
		want   string
	}{
		{0, 3, "000"}, {1, 3, "001"}, {4, 3, "100"}, {7, 3, "111"}, {5, 4, "0101"},
	}
	for _, c := range cases {
		if got := FormatBitstring(c.idx, c.n); got != c.want {
			t.Errorf("FormatBitstring(%d, %d) = %q, want %q", c.idx, c.n, got, c.want)
		}
	}
}

func TestResetRestoresGround(t *testing.T) {
	s := MustNewState(4)
	PrepareGHZ(s)
	s.Reset()
	if s.Probability(0) != 1 {
		t.Error("Reset should restore |0000>")
	}
}
