package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/durable"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/mqss"
	"repro/internal/qdmi"
	"repro/internal/tenant"
)

// Env is the live stack one scenario run executes against: a fleet of twin
// QPUs behind the scheduler, fronted by the MQSS v2 REST API on a real
// loopback listener, driven through the remote client so watch streams,
// idempotency and cancellation take the same wire path production clients
// do. Hooks receive the Env to reach any layer.
type Env struct {
	Spec   Spec
	Fleet  *fleet.Scheduler
	QPUs   map[string]*device.QPU
	Names  []string
	Client *mqss.Client
	// Rand is the scenario's deterministic source for fault placement and
	// chaff shaping. Wall-clock timing still varies run to run — that is
	// what the variance gate measures.
	Rand *rand.Rand

	// Store is the crash-durable job store, present after EnableDurability;
	// the Crash hook abandons it (simulated kill -9) and replays it into the
	// rebuilt stack.
	Store *durable.Store

	// Peers are the extra federation members, present after
	// EnableFederation; the main stack is member "node-0".
	Peers []*FedPeer

	fed     *federation.Node
	srv     *mqss.Server
	hs      *httptest.Server
	dataDir string

	mu         sync.Mutex
	recent     []string // measured v2 job IDs, for churn targets
	chaff      []string // fault-generated v2 job IDs (exempt from SLOs, not from zero-lost)
	injectDone chan struct{}
	bg         sync.WaitGroup
}

// DeviceName returns the i-th device name ("dev-0"...), a stable handle for
// fault hooks.
func (e *Env) DeviceName(i int) string { return e.Names[i%len(e.Names)] }

// QPU returns the raw simulator behind the i-th device, the layer fault
// injection and pacing hooks act on.
func (e *Env) QPU(i int) *device.QPU { return e.QPUs[e.DeviceName(i)] }

// InjectDone is closed when the inject phase's measured load has fully
// settled; background churn spawned by a Fault hook should stop then.
func (e *Env) InjectDone() <-chan struct{} { return e.injectDone }

// Go runs fn on a background goroutine the runner joins before the
// recovery phase is measured.
func (e *Env) Go(fn func()) {
	e.bg.Add(1)
	go func() {
		defer e.bg.Done()
		fn()
	}()
}

// SubmitChaff submits a fault-generated job through the v2 API and records
// its ID: chaff is exempt from the latency/error SLOs (a deadline storm is
// *supposed* to expire), but the zero-lost gate still requires every chaff
// ID to reach a terminal state.
func (e *Env) SubmitChaff(ctx context.Context, req mqss.SubmitRequest) (string, error) {
	h, err := e.Client.Submit(ctx, req, "")
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	e.chaff = append(e.chaff, h.ID)
	e.mu.Unlock()
	return h.ID, nil
}

// RecentJobID returns a random measured job ID submitted so far ("" when
// none yet) — churn hooks watch and abandon these.
func (e *Env) RecentJobID() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.recent) == 0 {
		return ""
	}
	return e.recent[e.Rand.Intn(len(e.recent))]
}

func (e *Env) noteMeasured(id string) {
	e.mu.Lock()
	e.recent = append(e.recent, id)
	e.mu.Unlock()
}

func (e *Env) chaffIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.chaff...)
}

// newEnv builds the stack for one run of spec. Device seeds derive from the
// scenario seed plus the run index so reruns are independent but seeded.
func newEnv(spec Spec, run int) (*Env, error) {
	e := &Env{
		Spec:       spec,
		Rand:       rand.New(rand.NewSource(spec.Seed*1000 + int64(run))),
		injectDone: make(chan struct{}),
	}
	if err := e.buildFleet(); err != nil {
		return nil, err
	}
	e.srv = mqss.NewFleetServer(e.Fleet)
	e.applyAdmission()
	e.hs = httptest.NewServer(e.srv)
	httpc := e.hs.Client()
	// Every measured job holds a watch stream open; without headroom the
	// transport would churn connections under the phase fan-out.
	if tr, ok := httpc.Transport.(*http.Transport); ok {
		tr.MaxIdleConnsPerHost = 4 * spec.Load.Jobs
	}
	e.Client = mqss.NewRemoteClient(e.hs.URL, httpc)
	if spec.Hooks.Setup != nil {
		spec.Hooks.Setup(e)
	}
	return e, nil
}

// buildFleet constructs the scheduler and its devices from the spec's
// deterministic seeds. Crash reruns it so the reborn stack matches the one
// that died device for device.
func (e *Env) buildFleet() error {
	spec := e.Spec
	e.Fleet = fleet.New(spec.Fleet.Policy, nil)
	e.QPUs = make(map[string]*device.QPU, spec.Fleet.Devices)
	e.Names = nil
	for i := 0; i < spec.Fleet.Devices; i++ {
		name := fmt.Sprintf("dev-%d", i)
		qpu, err := device.New(device.Config{
			Name: name, Rows: spec.Fleet.Rows, Cols: spec.Fleet.Cols,
			Seed: spec.Seed + int64(i), DigitalTwin: true,
		})
		if err != nil {
			e.Fleet.Stop()
			return fmt.Errorf("scenario: building %s: %w", name, err)
		}
		qpu.SetExecLatency(spec.Fleet.ExecLatency)
		if err := e.Fleet.AddDevice(name, qdmi.NewDevice(qpu, nil), spec.Fleet.Workers); err != nil {
			e.Fleet.Stop()
			return fmt.Errorf("scenario: adding %s: %w", name, err)
		}
		e.QPUs[name] = qpu
		e.Names = append(e.Names, name)
	}
	return nil
}

// applyAdmission pushes the spec's admission profile into the freshly built
// stack: the token bucket onto the v2 front end, the shedding bounds onto
// every device queue. Crash calls it again on the reborn stack — admission
// config is server config and must survive a restart.
func (e *Env) applyAdmission() {
	a := e.Spec.Admission
	if a.Rate > 0 {
		e.srv.SetTenantLimits(a.Rate, a.Burst)
	}
	if adm := (tenant.Admission{MaxTenantQueue: a.MaxTenantQueue, HighWater: a.HighWater}); adm.Enabled() {
		e.Fleet.SetAdmission(adm)
	}
}

// EnableDurability backs this run's stack with a crash-durable job store in
// a throwaway directory (group-commit fsync, the qhpcd default). Call from
// a Setup hook; Crash then has a WAL to replay.
func (e *Env) EnableDurability() error {
	dir, err := os.MkdirTemp("", "scenario-wal-*")
	if err != nil {
		return fmt.Errorf("scenario: wal dir: %w", err)
	}
	st, _, err := durable.Open(dir, durable.Options{Sync: durable.SyncGroup})
	if err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("scenario: opening store: %w", err)
	}
	e.dataDir = dir
	e.Store = st
	e.Fleet.AttachStore(st)
	e.srv.AttachStore(st, nil)
	return nil
}

// Crash is the kill -9 fault: it abandons the store mid-flight (unflushed
// group-commit buffer lost, no final fsync — exactly what SIGKILL leaves on
// disk), tears the whole stack down, then boots a fresh one from the same
// data directory on the same port. Every job the WAL acked must come back:
// terminal ones with results, in-flight ones re-queued under their original
// IDs. Clients keep their handles — the address survives the reboot.
func (e *Env) Crash() error {
	if e.Store == nil {
		return fmt.Errorf("scenario: Crash needs EnableDurability in the Setup hook")
	}
	addr := e.hs.Listener.Addr().String()

	// The kill: from here on nothing the dying process does reaches disk.
	e.Store.Abandon()
	e.srv.Close() // release v2 watch streams so the listener can drain
	e.hs.Close()
	e.Fleet.Stop()

	// The reboot: replay snapshot + WAL, rebuild the identical fleet, hand
	// it the recovered jobs, and come back up on the same address.
	st, rec, err := durable.Open(e.dataDir, durable.Options{Sync: durable.SyncGroup})
	if err != nil {
		return fmt.Errorf("scenario: reopening store: %w", err)
	}
	if err := e.buildFleet(); err != nil {
		return err
	}
	e.Fleet.AttachStore(st)
	rs, err := e.Fleet.Restore(rec.FleetJobs)
	if err != nil {
		return fmt.Errorf("scenario: restoring jobs: %w", err)
	}
	st.NoteRestore(rs.Terminal, rs.Requeued, rs.Expired)
	e.Store = st
	e.srv = mqss.NewFleetServer(e.Fleet)
	e.srv.AttachStore(st, rec.Idem)
	e.applyAdmission()

	var l net.Listener
	for attempt := 0; ; attempt++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt >= 50 {
			return fmt.Errorf("scenario: rebinding %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	e.hs = &httptest.Server{Listener: l, Config: &http.Server{Handler: e.srv}}
	e.hs.Start()
	return nil
}

// close tears the run's stack down: background churn first, then the HTTP
// front end, then the scheduler (parking any stragglers).
func (e *Env) close() {
	select {
	case <-e.injectDone:
	default:
		close(e.injectDone)
	}
	e.bg.Wait()
	e.closePeers()
	e.srv.Close()
	e.hs.Close()
	e.Fleet.Stop()
	if e.Store != nil {
		e.Store.Close()
	}
	if e.dataDir != "" {
		os.RemoveAll(e.dataDir)
	}
}

// endInject marks the inject phase settled and joins background churn.
func (e *Env) endInject() {
	select {
	case <-e.injectDone:
	default:
		close(e.injectDone)
	}
	e.bg.Wait()
}

// settleChaff waits (bounded) for every chaff job to reach a terminal
// state and returns how many never did — input to the zero-lost gate.
func (e *Env) settleChaff(timeout time.Duration) (lost int) {
	ids := e.chaffIDs()
	if len(ids) == 0 {
		return 0
	}
	deadline := time.Now().Add(timeout)
	for _, id := range ids {
		h, err := e.Client.Handle(id)
		if err != nil {
			lost++
			continue
		}
		settled := false
		for time.Now().Before(deadline) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			j, err := h.Poll(ctx)
			cancel()
			if err == nil && j.State.Terminal() {
				settled = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !settled {
			lost++
		}
	}
	return lost
}
