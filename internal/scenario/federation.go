package scenario

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/durable"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/mqss"
	"repro/internal/qdmi"
	"repro/internal/tenant"
)

// Federated scenarios run the main Env stack as one member of a qhpcd
// federation plus N extra peers, each a full node: its own fleet, devices,
// crash-durable store, and v2 server on a real listener. The measured load
// still enters through e.Client (the main node), so placement forwarding,
// owner proxying, and cross-node watch streams all ride the same wire path
// production clients exercise.

// Heartbeat pacing for lab federations: fast enough that peer death is
// detected inside one inject phase, slow enough to stay off the hot path.
const (
	fedLabHeartbeat = 20 * time.Millisecond
	fedLabDeadAfter = 150 * time.Millisecond
)

// FedPeer is one extra federation member beside the main Env stack.
type FedPeer struct {
	Name   string
	Fleet  *fleet.Scheduler
	QPUs   map[string]*device.QPU
	Client *mqss.Client
	// LastRestore is what the peer's most recent WAL replay brought back —
	// evidence for the re-admission checks after CrashPeer.
	LastRestore fleet.RestoreStats

	cfg     federation.Config
	srv     *mqss.Server
	hs      *httptest.Server
	fed     *federation.Node
	store   *durable.Store
	dataDir string
}

// EnableFederation joins the main stack with extra full peer nodes into
// one federation. Call from a Setup hook; the main node is "node-0" and
// peers are "node-1".. Each peer gets its own durable store so CrashPeer
// has a WAL to replay.
func (e *Env) EnableFederation(extra int) error {
	names := make([]string, extra+1)
	urls := map[string]string{}
	names[0] = "node-0"
	urls["node-0"] = e.hs.URL
	for i := 1; i <= extra; i++ {
		name := fmt.Sprintf("node-%d", i)
		p := &FedPeer{Name: name}
		if err := e.buildPeer(p, i); err != nil {
			return err
		}
		names[i] = name
		urls[name] = p.hs.URL
		e.Peers = append(e.Peers, p)
	}
	// Every member knows every other; the URL map is complete only now,
	// which is why the servers start before the federation layer attaches.
	join := func(self string, srv *mqss.Server, f *fleet.Scheduler) (*federation.Node, federation.Config, error) {
		peers := map[string]string{}
		for id, u := range urls {
			if id != self {
				peers[id] = u
			}
		}
		cfg := federation.Config{
			NodeID: self, SelfURL: urls[self], Peers: peers,
			HeartbeatEvery: fedLabHeartbeat, DeadAfter: fedLabDeadAfter,
		}
		fed, err := federation.New(cfg)
		if err != nil {
			return nil, cfg, err
		}
		f.SetIDBase(fed.SelfBase())
		f.SetIDLimit(fed.SelfLimit())
		f.SetNodeID(self)
		srv.AttachFederation(fed)
		return fed, cfg, nil
	}
	fed, _, err := join("node-0", e.srv, e.Fleet)
	if err != nil {
		return err
	}
	e.fed = fed
	for _, p := range e.Peers {
		if p.fed, p.cfg, err = join(p.Name, p.srv, p.Fleet); err != nil {
			return err
		}
	}
	e.fed.Start()
	for _, p := range e.Peers {
		p.fed.Start()
	}
	return nil
}

// Federation returns the main node's federation membership (nil unless
// EnableFederation ran).
func (e *Env) Federation() *federation.Node { return e.fed }

// buildPeer constructs one peer node: durable store, fleet with the spec's
// device profile (distinct seeds), v2 server, live listener.
func (e *Env) buildPeer(p *FedPeer, idx int) error {
	dir, err := os.MkdirTemp("", "scenario-fed-*")
	if err != nil {
		return fmt.Errorf("scenario: peer wal dir: %w", err)
	}
	st, _, err := durable.Open(dir, durable.Options{Sync: durable.SyncGroup})
	if err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("scenario: peer store: %w", err)
	}
	p.dataDir, p.store = dir, st
	if err := e.buildPeerFleet(p, idx); err != nil {
		return err
	}
	p.Fleet.AttachStore(st)
	p.srv = mqss.NewFleetServer(p.Fleet)
	p.srv.AttachStore(st, nil)
	e.applyPeerAdmission(p)
	p.hs = httptest.NewServer(p.srv)
	p.Client = mqss.NewRemoteClient(p.hs.URL, p.hs.Client())
	return nil
}

// buildPeerFleet mirrors buildFleet for a peer, with per-peer device seeds
// so no two nodes simulate identical hardware.
func (e *Env) buildPeerFleet(p *FedPeer, idx int) error {
	spec := e.Spec
	p.Fleet = fleet.New(spec.Fleet.Policy, nil)
	p.QPUs = make(map[string]*device.QPU, spec.Fleet.Devices)
	for i := 0; i < spec.Fleet.Devices; i++ {
		name := fmt.Sprintf("p%d-dev-%d", idx, i)
		qpu, err := device.New(device.Config{
			Name: name, Rows: spec.Fleet.Rows, Cols: spec.Fleet.Cols,
			Seed: spec.Seed + int64(1000*idx+i), DigitalTwin: true,
		})
		if err != nil {
			p.Fleet.Stop()
			return fmt.Errorf("scenario: building %s: %w", name, err)
		}
		qpu.SetExecLatency(spec.Fleet.ExecLatency)
		if err := p.Fleet.AddDevice(name, qdmi.NewDevice(qpu, nil), spec.Fleet.Workers); err != nil {
			p.Fleet.Stop()
			return fmt.Errorf("scenario: adding %s: %w", name, err)
		}
		p.QPUs[name] = qpu
	}
	return nil
}

// applyPeerAdmission pushes the spec's admission profile onto a peer —
// forwarded submits draw their tenant tokens at the owner, so the owner
// must carry the same limits the entry node does.
func (e *Env) applyPeerAdmission(p *FedPeer) {
	a := e.Spec.Admission
	if a.Rate > 0 {
		p.srv.SetTenantLimits(a.Rate, a.Burst)
	}
	if adm := (tenant.Admission{MaxTenantQueue: a.MaxTenantQueue, HighWater: a.HighWater}); adm.Enabled() {
		p.Fleet.SetAdmission(adm)
	}
}

// CrashPeer is the federated kill -9: it abandons peer idx's store
// mid-flight, tears the whole node down (heartbeater included), waits for
// the main node's failure detector to declare it dead, then reboots it
// from the same data directory on the same address and waits until the
// heartbeats revive it. Jobs the dead node owned are refused with
// retryable 503s during the window — never re-placed — and its WAL replay
// must re-admit every acked job under its original ID.
func (e *Env) CrashPeer(idx int) error {
	if e.fed == nil {
		return fmt.Errorf("scenario: CrashPeer needs EnableFederation in the Setup hook")
	}
	p := e.Peers[idx]
	addr := p.hs.Listener.Addr().String()

	// The kill: heartbeater first (a real crash takes the whole process),
	// then the listener and the fleet. Nothing else reaches disk.
	p.store.Abandon()
	p.fed.Close()
	p.srv.Close()
	p.hs.Close()
	p.Fleet.Stop()

	// The failure detector must notice on its own — no backchannel.
	deadline := time.Now().Add(20 * fedLabDeadAfter)
	for e.fed.Alive(p.Name) && time.Now().Before(deadline) {
		time.Sleep(fedLabHeartbeat / 2)
	}
	if e.fed.Alive(p.Name) {
		return fmt.Errorf("scenario: main node never declared %s dead", p.Name)
	}

	// The reboot: WAL replay, identical fleet, same address, rejoin.
	st, rec, err := durable.Open(p.dataDir, durable.Options{Sync: durable.SyncGroup})
	if err != nil {
		return fmt.Errorf("scenario: reopening peer store: %w", err)
	}
	if err := e.buildPeerFleet(p, idx+1); err != nil {
		return err
	}
	p.Fleet.AttachStore(st)
	rs, err := p.Fleet.Restore(rec.FleetJobs)
	if err != nil {
		return fmt.Errorf("scenario: restoring peer jobs: %w", err)
	}
	st.NoteRestore(rs.Terminal, rs.Requeued, rs.Expired)
	p.store, p.LastRestore = st, rs
	p.srv = mqss.NewFleetServer(p.Fleet)
	p.srv.AttachStore(st, rec.Idem)
	e.applyPeerAdmission(p)
	if p.fed, err = federation.New(p.cfg); err != nil {
		return err
	}
	p.Fleet.SetIDBase(p.fed.SelfBase())
	p.Fleet.SetIDLimit(p.fed.SelfLimit())
	p.Fleet.SetNodeID(p.Name)
	p.srv.AttachFederation(p.fed)

	var l net.Listener
	for attempt := 0; ; attempt++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt >= 50 {
			return fmt.Errorf("scenario: rebinding %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.hs = &httptest.Server{Listener: l, Config: &http.Server{Handler: p.srv}}
	p.hs.Start()
	p.Client = mqss.NewRemoteClient(p.hs.URL, p.hs.Client())
	p.fed.Start()

	// Rejoin confirmed: the main node's view flips back to alive.
	deadline = time.Now().Add(20 * fedLabDeadAfter)
	for !e.fed.Alive(p.Name) && time.Now().Before(deadline) {
		time.Sleep(fedLabHeartbeat / 2)
	}
	if !e.fed.Alive(p.Name) {
		return fmt.Errorf("scenario: %s never rejoined after reboot", p.Name)
	}
	return nil
}

// closePeers tears the extra federation members down.
func (e *Env) closePeers() {
	if e.fed != nil {
		e.fed.Close()
	}
	for _, p := range e.Peers {
		p.fed.Close()
		p.srv.Close()
		p.hs.Close()
		p.Fleet.Stop()
		p.store.Close()
		os.RemoveAll(p.dataDir)
	}
}

// fedConserve asserts per-tenant job conservation on every member — the
// cross-node "no job lost or double-executed" invariant. Each job lives on
// exactly one node (its ID names the owner), so summing per-node
// conservation covers the federation.
func fedConserve(e *Env) error {
	if err := conserveTenants(e); err != nil {
		return fmt.Errorf("node-0: %w", err)
	}
	for _, p := range e.Peers {
		for _, r := range p.Fleet.TenantUsage() {
			total := r.Completed + r.Failed + r.Cancelled + r.Interrupted + r.Shed + uint64(r.Queued)
			if r.Submitted != total {
				return fmt.Errorf("%s tenant %s: %d submitted but %d accounted (%+v)", p.Name, r.User, r.Submitted, total, r)
			}
		}
	}
	return nil
}
