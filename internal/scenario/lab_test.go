package scenario

import (
	"flag"
	"testing"
	"time"
)

var (
	scenarioLab  = flag.Bool("scenario.lab", false, "run the full fault-scenario lab (real stack, N reruns, writes the artifact)")
	scenarioName = flag.String("scenario.name", "", "restrict -scenario.lab to one scenario")
	scenarioRuns = flag.Int("scenario.runs", 3, "reruns per scenario for -scenario.lab (min 3 for the variance gate)")
	scenarioOut  = flag.String("scenario.out", "BENCH_scenarios.json", "artifact path for -scenario.lab")
)

// TestScenarioLab is the CI release gate: every registered scenario runs
// N >= 3 times against the full stack, the SLO gates are applied to the
// rerun medians, and the provenance-stamped artifact is written whether or
// not the gates pass (a failing artifact is the evidence).
func TestScenarioLab(t *testing.T) {
	if !*scenarioLab {
		t.Skip("pass -scenario.lab to run the fault-scenario lab")
	}
	runs := *scenarioRuns
	if runs < 3 {
		t.Fatalf("-scenario.runs=%d: the variance gate needs at least 3 reruns", runs)
	}
	r := &Runner{Runs: runs, Logf: t.Logf}
	art, err := r.RunAll(*scenarioName)
	if err != nil {
		t.Fatal(err)
	}
	if err := art.WriteFile(*scenarioOut); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (commit %s, %s)", *scenarioOut, art.Provenance.Commit, art.Provenance.GoVersion)
	for _, res := range art.Scenarios {
		for _, g := range res.Gates {
			status := "pass"
			if !g.Pass {
				status = "FAIL"
			}
			t.Logf("%s / %-20s %s: %s", res.Name, g.Name, status, g.Detail)
		}
	}
	if *scenarioName == "" && len(art.Scenarios) < 9 {
		t.Fatalf("scenario registry shrank: %d scenarios, want >= 9", len(art.Scenarios))
	}
	if !art.Pass {
		t.Fatal("scenario lab: SLO release gates tripped (see gate log above)")
	}
}

// smokeSpec shrinks a scenario for the always-on tests: 2 devices, a small
// batch, 2 workers — enough to exercise the whole path in well under a
// second without flag gating.
func smokeSpec(t *testing.T, name string) Spec {
	t.Helper()
	spec, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	spec.Fleet.Devices = 3
	spec.Fleet.Workers = 2
	spec.Load.Jobs = 12
	return spec
}

// TestScenarioSmoke runs one full scenario (reduced load, single run) in
// the regular suite: the deterministic gates — zero lost jobs, terminal
// watch delivery, zero surfaced errors through a device death — must hold
// on every `go test ./...`, not only when the lab flag is up.
func TestScenarioSmoke(t *testing.T) {
	r := &Runner{Runs: 1, Logf: t.Logf}
	res, err := r.RunSpec(smokeSpec(t, "device-death-midbatch"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zero-lost", "watch-terminal", "error-rate"} {
		g := res.Gate(name)
		if g == nil {
			t.Fatalf("gate %q missing", name)
		}
		if !g.Pass {
			t.Errorf("gate %s tripped: %s", g.Name, g.Detail)
		}
	}
}

// TestCrashRecoverySmoke runs the kill -9 scenario (reduced load, single
// run) in the regular suite: the WAL replay path, same-port restart, watch
// re-attach, and the zero-lost/watch-terminal/error-rate gates must hold on
// every `go test ./...`.
func TestCrashRecoverySmoke(t *testing.T) {
	r := &Runner{Runs: 1, Logf: t.Logf}
	res, err := r.RunSpec(smokeSpec(t, "node-crash-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zero-lost", "watch-terminal", "error-rate"} {
		g := res.Gate(name)
		if g == nil {
			t.Fatalf("gate %q missing", name)
		}
		if !g.Pass {
			t.Errorf("gate %s tripped: %s", g.Name, g.Detail)
		}
	}
}

// TestTenantHogSmoke runs the WFQ-isolation scenario (reduced load, single
// run) in the regular suite: the victim tenants' jobs must all complete and
// the scenario-check gate — flood landed, victims whole, per-tenant
// conservation — must hold on every `go test ./...`.
func TestTenantHogSmoke(t *testing.T) {
	r := &Runner{Runs: 1, Logf: t.Logf}
	res, err := r.RunSpec(smokeSpec(t, "tenant-hog"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zero-lost", "watch-terminal", "error-rate", "scenario-check"} {
		g := res.Gate(name)
		if g == nil {
			t.Fatalf("gate %q missing", name)
		}
		if !g.Pass {
			t.Errorf("gate %s tripped: %s", g.Name, g.Detail)
		}
	}
}

// TestOverloadStormSmoke runs the admission-storm scenario (reduced load,
// single run) in the regular suite: the shedder must fire, every shed job
// must land terminal (zero-lost covers chaff), and per-tenant conservation
// must balance across the hundreds of storm users.
func TestOverloadStormSmoke(t *testing.T) {
	r := &Runner{Runs: 1, Logf: t.Logf}
	res, err := r.RunSpec(smokeSpec(t, "overload-storm"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zero-lost", "watch-terminal", "error-rate", "scenario-check"} {
		g := res.Gate(name)
		if g == nil {
			t.Fatalf("gate %q missing", name)
		}
		if !g.Pass {
			t.Errorf("gate %s tripped: %s", g.Name, g.Detail)
		}
	}
}

// TestPeerDeathReshardSmoke runs the federated kill -9 scenario (reduced
// load, single run) in the regular suite: heartbeat death detection, the
// retryable-refusal window, WAL-recovered re-admission, and the
// no-loss/no-double-execution invariants must hold on every `go test`.
func TestPeerDeathReshardSmoke(t *testing.T) {
	r := &Runner{Runs: 1, Logf: t.Logf}
	res, err := r.RunSpec(smokeSpec(t, "peer-death-reshard"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zero-lost", "watch-terminal", "error-rate", "scenario-check"} {
		g := res.Gate(name)
		if g == nil {
			t.Fatalf("gate %q missing", name)
		}
		if !g.Pass {
			t.Errorf("gate %s tripped: %s", g.Name, g.Detail)
		}
	}
}

// TestCrossNodeWatchSmoke runs the proxied-watch scenario (reduced load,
// single run) in the regular suite: watch streams attached through
// non-owner members must deliver every terminal event while churned.
func TestCrossNodeWatchSmoke(t *testing.T) {
	r := &Runner{Runs: 1, Logf: t.Logf}
	res, err := r.RunSpec(smokeSpec(t, "cross-node-watch"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zero-lost", "watch-terminal", "error-rate", "scenario-check"} {
		g := res.Gate(name)
		if g == nil {
			t.Fatalf("gate %q missing", name)
		}
		if !g.Pass {
			t.Errorf("gate %s tripped: %s", g.Name, g.Detail)
		}
	}
}

// TestScenarioNegativeControl proves the lab can see an unhandled
// incident: the device-death fault is injected but the React hook (mark
// failed, trigger failover) is withheld. The poisoned device stays in the
// rotation, fails fast, looks least-loaded, and eats the batch — the
// error-rate gate must trip. A lab whose gates pass either way gates
// nothing.
func TestScenarioNegativeControl(t *testing.T) {
	r := &Runner{Runs: 1, SkipReact: true, Logf: t.Logf}
	res, err := r.RunSpec(smokeSpec(t, "device-death-midbatch"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("negative control: scenario passed with the recovery machinery withheld")
	}
	g := res.Gate("error-rate")
	if g == nil {
		t.Fatal("error-rate gate missing")
	}
	if g.Pass {
		t.Errorf("error-rate gate should trip without failover; gates: %+v", res.Gates)
	}
	// The failure must be contained: jobs fail, they do not vanish.
	if zl := res.Gate("zero-lost"); zl == nil || !zl.Pass {
		t.Errorf("zero-lost should hold even in the unhandled incident: %+v", zl)
	}
}

// TestRegistry pins the built-in suite's shape: at least the six incident
// classes, unique names and seeds, and defaults that fill to a runnable
// spec.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 9 {
		t.Fatalf("registry has %d scenarios, want >= 9", len(all))
	}
	seeds := map[int64]string{}
	for _, s := range all {
		if s.Seed == 0 {
			t.Errorf("%s: seed must be fixed and non-zero", s.Name)
		}
		if prev, dup := seeds[s.Seed]; dup {
			t.Errorf("%s and %s share seed %d", prev, s.Name, s.Seed)
		}
		seeds[s.Seed] = s.Name
		if s.Hooks.Fault == nil {
			t.Errorf("%s: a scenario without a Fault hook is not a fault scenario", s.Name)
		}
	}
	for _, want := range []string{
		"device-death-midbatch", "calib-drift-midjob", "slow-straggler",
		"watch-churn", "deadline-storm", "maintenance-drain",
		"node-crash-recovery", "tenant-hog", "overload-storm",
		"peer-death-reshard", "cross-node-watch",
	} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("built-in scenario %q missing", want)
		}
	}
	var spec Spec
	spec.fill()
	if spec.Fleet.Devices == 0 || spec.Load.Jobs == 0 || spec.SLO.P95Ms[Warmup] == 0 ||
		spec.SLO.MinRecoveryRatio == 0 || spec.SLO.MaxSpreadPct == 0 || spec.Fleet.ExecLatency == 0 {
		t.Errorf("fill left zero defaults: %+v", spec)
	}
}

// TestGateEvaluation checks the gate math on synthetic aggregates, without
// touching the stack.
func TestGateEvaluation(t *testing.T) {
	spec := Spec{Name: "synthetic", Seed: 1}
	spec.fill()
	mk := func(mutate func(*Result)) *Result {
		res := &Result{Name: "synthetic", Runs: 3, RecoveryRatio: 1.0, WarmupSpreadPct: 5}
		for _, ph := range Phases {
			res.Phases = append(res.Phases, PhaseSummary{
				Phase: ph, Jobs: 32, MedianJobsPerSec: 400,
				MedianP95Ms: 20, P95BoundMs: spec.SLO.P95Ms[ph],
			})
		}
		if mutate != nil {
			mutate(res)
		}
		res.Gates = evaluateGates(spec, res)
		res.Pass = true
		for _, g := range res.Gates {
			if !g.Pass {
				res.Pass = false
			}
		}
		return res
	}

	if res := mk(nil); !res.Pass {
		t.Errorf("clean aggregate should pass all gates: %+v", res.Gates)
	}
	cases := []struct {
		gate   string
		mutate func(*Result)
	}{
		{"p95-latency", func(r *Result) { r.Phases[1].MedianP95Ms = r.Phases[1].P95BoundMs + 1 }},
		{"error-rate", func(r *Result) { r.Phases[1].MaxErrors = 3 }},
		{"zero-lost", func(r *Result) { r.Phases[2].MaxLost = 1 }},
		{"watch-terminal", func(r *Result) { r.Phases[0].MaxWatchMisses = 2 }},
		{"recovery-throughput", func(r *Result) { r.RecoveryRatio = 0.5 }},
		{"variance", func(r *Result) { r.WarmupSpreadPct = 95 }},
	}
	for _, c := range cases {
		res := mk(c.mutate)
		g := res.Gate(c.gate)
		if g == nil {
			t.Fatalf("gate %q missing", c.gate)
		}
		if g.Pass {
			t.Errorf("gate %s should trip, detail: %s", c.gate, g.Detail)
		}
		if res.Pass {
			t.Errorf("result should fail when %s trips", c.gate)
		}
		for _, other := range res.Gates {
			if other.Name != c.gate && !other.Pass {
				t.Errorf("gate %s tripped collaterally when testing %s: %s", other.Name, c.gate, other.Detail)
			}
		}
	}
}

// TestPhaseOrderAndTimeoutConstant pins structural assumptions the runner
// leans on.
func TestPhaseOrderAndTimeoutConstant(t *testing.T) {
	if len(Phases) != 3 || Phases[0] != Warmup || Phases[1] != Inject || Phases[2] != Recovery {
		t.Fatalf("phase order changed: %v", Phases)
	}
	if phaseTimeout < 30*time.Second {
		t.Fatalf("phaseTimeout %v too tight to be a liveness backstop", phaseTimeout)
	}
}
