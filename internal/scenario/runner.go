package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/mqss"
	"repro/internal/telemetry"
)

// phaseTimeout bounds how long one phase may take to settle. It is a
// liveness backstop, not an SLO: a job still non-terminal at the deadline
// is counted lost, which fails the zero-lost gate loudly.
const phaseTimeout = 90 * time.Second

// Runner executes scenarios and aggregates reruns into gated results.
type Runner struct {
	// Runs is the rerun count per scenario (minimum, and default, 3 — a
	// single run can't tell a regression from a hiccup).
	Runs int
	// SkipReact withholds every scenario's React hook: the fault lands and
	// the control plane does nothing. This is the negative control — gates
	// must trip, proving the lab detects unhandled incidents.
	SkipReact bool
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...interface{})
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) runs() int {
	if r.Runs < 1 {
		return 3
	}
	return r.Runs
}

// phaseStats is one phase of one run, measured at the v2 client.
type phaseStats struct {
	jobs        int
	jobsPerSec  float64
	p50Ms       float64
	p95Ms       float64
	errors      int // measured jobs that terminated failed/cancelled
	lost        int // submitted IDs that never reached a terminal state
	watchMisses int // terminal reached but the watch stream never said so
	chaffJobs   int
	chaffLost   int
	worstJobID  string  // slowest measured job, the trace-dump candidate
	worstLatMs  float64 // its end-to-end latency
}

// PhaseSummary is the cross-run aggregate of one phase.
type PhaseSummary struct {
	Phase            Phase   `json:"phase"`
	Jobs             int     `json:"jobs"`
	MedianJobsPerSec float64 `json:"median_jobs_per_sec"`
	MedianP50Ms      float64 `json:"median_p50_ms"`
	MedianP95Ms      float64 `json:"median_p95_ms"`
	P95BoundMs       float64 `json:"p95_bound_ms"`
	MaxErrors        int     `json:"max_errors"`
	MaxLost          int     `json:"max_lost"`
	MaxWatchMisses   int     `json:"max_watch_misses"`
	ChaffJobs        int     `json:"chaff_jobs,omitempty"`
}

// Gate is one pass/fail release check with its evidence.
type Gate struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Result is one scenario's gated aggregate across reruns.
type Result struct {
	Name            string         `json:"name"`
	Description     string         `json:"description"`
	Seed            int64          `json:"seed"`
	Runs            int            `json:"runs"`
	Phases          []PhaseSummary `json:"phases"`
	RecoveryRatio   float64        `json:"recovery_ratio"`
	WarmupSpreadPct float64        `json:"warmup_spread_pct"`
	// DeviceE2EP95Ms is the worst per-device dispatch-pipeline e2e p95 of
	// the final run — the server-side view alongside the client-side SLOs.
	DeviceE2EP95Ms float64 `json:"device_e2e_p95_ms"`
	// CheckFailures collects per-run failures of the scenario's Check hook;
	// empty when the hook held every run (or the scenario has none).
	CheckFailures []string `json:"check_failures,omitempty"`
	Gates         []Gate   `json:"gates"`
	Pass          bool     `json:"pass"`
	// WorstJobTrace is the span tree of the slowest measured job across all
	// runs, attached only when a gate fails: the first diagnostic an operator
	// wants is "where did the slow job spend its time".
	WorstJobID    string          `json:"worst_job_id,omitempty"`
	WorstJobLatMs float64         `json:"worst_job_lat_ms,omitempty"`
	WorstJobTrace json.RawMessage `json:"worst_job_trace,omitempty"`
}

// Gate looks up one gate by name.
func (res *Result) Gate(name string) *Gate {
	for i := range res.Gates {
		if res.Gates[i].Name == name {
			return &res.Gates[i]
		}
	}
	return nil
}

// Provenance stamps the artifact with where its numbers came from.
type Provenance struct {
	GoVersion   string `json:"go_version"`
	Platform    string `json:"platform"`
	Commit      string `json:"commit"`
	GeneratedAt string `json:"generated_at"`
	Runs        int    `json:"runs_per_scenario"`
	SeedPolicy  string `json:"seed_policy"`
}

// Artifact is the BENCH_scenarios.json schema.
type Artifact struct {
	Harness    string     `json:"harness"`
	Provenance Provenance `json:"provenance"`
	Scenarios  []Result   `json:"scenarios"`
	Pass       bool       `json:"pass"`
}

// WriteFile writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gitCommit best-efforts the current commit for provenance: CI env first,
// then the local git tree, else "unknown".
func gitCommit() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// RunAll executes every registered scenario whose name matches filter
// (empty = all) and assembles the artifact. Scenario failures are recorded
// in the results, not returned as errors; err is reserved for harness
// breakage (stack would not build, no scenario matched).
func (r *Runner) RunAll(filter string) (*Artifact, error) {
	art := &Artifact{
		Harness: "go test ./internal/scenario -run TestScenarioLab -scenario.lab",
		Provenance: Provenance{
			GoVersion:   runtime.Version(),
			Platform:    runtime.GOOS + "/" + runtime.GOARCH,
			Commit:      gitCommit(),
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Runs:        r.runs(),
			SeedPolicy:  "per-scenario fixed seed; run k derives device/fault seeds from seed*1000+k",
		},
		Pass: true,
	}
	for _, spec := range All() {
		if filter != "" && spec.Name != filter {
			continue
		}
		res, err := r.RunSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		art.Scenarios = append(art.Scenarios, *res)
		if !res.Pass {
			art.Pass = false
		}
	}
	if len(art.Scenarios) == 0 {
		return nil, fmt.Errorf("scenario: no scenario matches %q", filter)
	}
	return art, nil
}

// RunSpec executes one scenario r.Runs times and aggregates the reruns
// into a gated Result.
func (r *Runner) RunSpec(spec Spec) (*Result, error) {
	spec.fill()
	runs := r.runs()
	res := &Result{Name: spec.Name, Description: spec.Description, Seed: spec.Seed, Runs: runs}
	perRun := make([]map[Phase]phaseStats, 0, runs)
	var worst *worstJob
	for k := 0; k < runs; k++ {
		r.logf("scenario %s: run %d/%d", spec.Name, k+1, runs)
		stats, e2eP95, w, checkFail, err := r.runOnce(spec, k)
		if err != nil {
			return nil, err
		}
		if checkFail != "" {
			res.CheckFailures = append(res.CheckFailures, fmt.Sprintf("run %d: %s", k+1, checkFail))
		}
		perRun = append(perRun, stats)
		if e2eP95 > res.DeviceE2EP95Ms {
			res.DeviceE2EP95Ms = e2eP95
		}
		if w != nil && (worst == nil || w.latMs > worst.latMs) {
			worst = w
		}
	}

	collect := func(ph Phase, f func(phaseStats) float64) []float64 {
		out := make([]float64, 0, len(perRun))
		for _, st := range perRun {
			out = append(out, f(st[ph]))
		}
		return out
	}
	maxInt := func(ph Phase, f func(phaseStats) int) int {
		max := 0
		for _, st := range perRun {
			if v := f(st[ph]); v > max {
				max = v
			}
		}
		return max
	}

	for _, ph := range Phases {
		res.Phases = append(res.Phases, PhaseSummary{
			Phase:            ph,
			Jobs:             spec.Load.Jobs,
			MedianJobsPerSec: telemetry.Median(collect(ph, func(s phaseStats) float64 { return s.jobsPerSec })),
			MedianP50Ms:      telemetry.Median(collect(ph, func(s phaseStats) float64 { return s.p50Ms })),
			MedianP95Ms:      telemetry.Median(collect(ph, func(s phaseStats) float64 { return s.p95Ms })),
			P95BoundMs:       spec.SLO.P95Ms[ph],
			MaxErrors:        maxInt(ph, func(s phaseStats) int { return s.errors }),
			MaxLost:          maxInt(ph, func(s phaseStats) int { return s.lost + s.chaffLost }),
			MaxWatchMisses:   maxInt(ph, func(s phaseStats) int { return s.watchMisses }),
			ChaffJobs:        maxInt(ph, func(s phaseStats) int { return s.chaffJobs }),
		})
	}

	ratios := make([]float64, 0, len(perRun))
	for _, st := range perRun {
		if w := st[Warmup].jobsPerSec; w > 0 {
			ratios = append(ratios, st[Recovery].jobsPerSec/w)
		}
	}
	res.RecoveryRatio = telemetry.Median(ratios)
	res.WarmupSpreadPct = telemetry.SpreadPct(collect(Warmup, func(s phaseStats) float64 { return s.jobsPerSec }))

	res.Gates = evaluateGates(spec, res)
	res.Pass = true
	for _, g := range res.Gates {
		if !g.Pass {
			res.Pass = false
		}
	}
	status := "PASS"
	if !res.Pass {
		status = "FAIL"
		// A failed gate ships its first diagnostic with it: the slowest
		// job's span waterfall, captured before the run's stack went away.
		if worst != nil {
			res.WorstJobID = worst.id
			res.WorstJobLatMs = worst.latMs
			res.WorstJobTrace = worst.trace
			r.logf("scenario %s: worst job %s took %.1f ms; trace: %s",
				spec.Name, worst.id, worst.latMs, worst.trace)
		}
	}
	r.logf("scenario %s: %s (recovery %.2fx, warmup spread %.1f%%)", spec.Name, status, res.RecoveryRatio, res.WarmupSpreadPct)
	return res, nil
}

// evaluateGates applies the SLO contract to the aggregated result.
func evaluateGates(spec Spec, res *Result) []Gate {
	var gates []Gate
	add := func(name string, pass bool, detail string, args ...interface{}) {
		gates = append(gates, Gate{Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	p95OK, p95Detail := true, make([]string, 0, 3)
	errOK, errDetail := true, make([]string, 0, 3)
	lostTotal, missTotal := 0, 0
	for _, ph := range res.Phases {
		if ph.MedianP95Ms > ph.P95BoundMs {
			p95OK = false
		}
		p95Detail = append(p95Detail, fmt.Sprintf("%s %.1f/%.0fms", ph.Phase, ph.MedianP95Ms, ph.P95BoundMs))
		rate := 0.0
		if ph.Jobs > 0 {
			rate = float64(ph.MaxErrors) / float64(ph.Jobs)
		}
		if rate > spec.SLO.MaxErrorRate {
			errOK = false
		}
		errDetail = append(errDetail, fmt.Sprintf("%s %d/%d", ph.Phase, ph.MaxErrors, ph.Jobs))
		lostTotal += ph.MaxLost
		missTotal += ph.MaxWatchMisses
	}
	add("p95-latency", p95OK, "median p95 vs bound: %s", strings.Join(p95Detail, ", "))
	add("error-rate", errOK, "worst-run failures (bound %.0f%%): %s", spec.SLO.MaxErrorRate*100, strings.Join(errDetail, ", "))
	add("zero-lost", lostTotal == 0, "%d submitted IDs never reached a terminal state (chaff included)", lostTotal)
	add("watch-terminal", missTotal == 0, "%d jobs reached a terminal state their watch stream never delivered", missTotal)
	add("recovery-throughput", res.RecoveryRatio >= spec.SLO.MinRecoveryRatio,
		"median recovery/warmup throughput %.2f (floor %.2f)", res.RecoveryRatio, spec.SLO.MinRecoveryRatio)
	add("variance", res.WarmupSpreadPct <= spec.SLO.MaxSpreadPct,
		"warmup throughput spread %.1f%% across %d runs (ceiling %.0f%%)", res.WarmupSpreadPct, res.Runs, spec.SLO.MaxSpreadPct)
	if spec.Hooks.Check != nil {
		if len(res.CheckFailures) == 0 {
			add("scenario-check", true, "scenario invariant held on all %d runs", res.Runs)
		} else {
			add("scenario-check", false, "%s", strings.Join(res.CheckFailures, "; "))
		}
	}
	return gates
}

// worstJob is one run's slowest measured job with its span tree, captured
// before the run's stack is torn down (traces die with the Env).
type worstJob struct {
	id    string
	latMs float64
	trace json.RawMessage
}

// runOnce executes all three phases of one seeded run and returns the
// per-phase stats, the worst device-side e2e p95, the slowest job's trace
// (nil when it could not be fetched), and the Check hook's failure ("" when
// it held or the scenario has none).
func (r *Runner) runOnce(spec Spec, run int) (map[Phase]phaseStats, float64, *worstJob, string, error) {
	env, err := newEnv(spec, run)
	if err != nil {
		return nil, 0, nil, "", err
	}
	defer env.close()

	stats := make(map[Phase]phaseStats, 3)
	stats[Warmup] = r.runPhase(env, Warmup, nil)

	fault := func() {
		if spec.Hooks.Fault != nil {
			spec.Hooks.Fault(env)
		}
		if !r.SkipReact && spec.Hooks.React != nil {
			spec.Hooks.React(env)
		}
	}
	inject := r.runPhase(env, Inject, fault)
	env.endInject()
	inject.chaffLost = env.settleChaff(phaseTimeout)
	inject.chaffJobs = len(env.chaffIDs())
	stats[Inject] = inject

	if spec.Hooks.Recover != nil {
		spec.Hooks.Recover(env)
	}
	stats[Recovery] = r.runPhase(env, Recovery, nil)

	// Server-side tail latency: the deepest per-device dispatch pipeline
	// view, via the shared histogram p95 helper.
	e2eP95 := 0.0
	for _, dm := range env.Fleet.Metrics().Devices {
		if p := dm.QRM.E2EMs.P95(); p > e2eP95 {
			e2eP95 = p
		}
	}
	checkFail := ""
	if spec.Hooks.Check != nil {
		if cerr := spec.Hooks.Check(env); cerr != nil {
			checkFail = cerr.Error()
		}
	}
	return stats, e2eP95, fetchWorstTrace(env, stats), checkFail, nil
}

// fetchWorstTrace pulls the span tree of the run's slowest measured job
// while the stack is still alive. Best-effort: the job may have been
// evicted from the trace retention ring under heavy chaff.
func fetchWorstTrace(env *Env, stats map[Phase]phaseStats) *worstJob {
	w := worstJob{}
	for _, st := range stats {
		if st.worstLatMs > w.latMs {
			w.latMs, w.id = st.worstLatMs, st.worstJobID
		}
	}
	if w.id == "" {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	jt, err := env.Client.V2JobTrace(ctx, w.id)
	if err != nil {
		return nil
	}
	data, err := json.Marshal(jt)
	if err != nil {
		return nil
	}
	w.trace = data
	return &w
}

// outcome is one measured job's fate.
type outcome struct {
	id      string
	latMs   float64
	failed  bool
	lost    bool
	watchOK bool
}

// runPhase submits the phase's measured load through the v2 API, watching
// every job to its terminal state. midFault, when set, fires after half the
// load is submitted — the incident lands with a backlog in flight.
func (r *Runner) runPhase(env *Env, ph Phase, midFault func()) phaseStats {
	spec := env.Spec
	jobs := spec.Load.Jobs
	results := make(chan outcome, jobs)
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), phaseTimeout)
	defer cancel()
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if midFault != nil && i == jobs/2 {
			midFault()
		}
		width := spec.Load.Widths[i%len(spec.Load.Widths)]
		user := spec.Load.User
		if spec.Load.Tenants > 0 {
			user = fmt.Sprintf("%s-%d", user, i%spec.Load.Tenants)
		}
		h, err := env.Client.Submit(ctx, mqss.SubmitRequest{
			Circuit: circuit.GHZ(width), Shots: spec.Load.Shots, User: user,
		}, "")
		if err != nil {
			// A rejected submission is a lost unit of offered load: loud
			// failure via the zero-lost gate.
			results <- outcome{lost: true}
			continue
		}
		env.noteMeasured(h.ID)
		submitted := time.Now()
		wg.Add(1)
		go func(h *mqss.JobHandle) {
			defer wg.Done()
			o := watchToTerminal(ctx, h, submitted)
			o.id = h.ID
			results <- o
		}(h)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	st := phaseStats{jobs: jobs}
	lat := make([]float64, 0, jobs)
	for o := range results {
		switch {
		case o.lost:
			st.lost++
		default:
			lat = append(lat, o.latMs)
			if o.latMs > st.worstLatMs {
				st.worstLatMs, st.worstJobID = o.latMs, o.id
			}
			if o.failed {
				st.errors++
			}
			if !o.watchOK {
				st.watchMisses++
			}
		}
	}
	if elapsed > 0 {
		st.jobsPerSec = float64(jobs) / elapsed.Seconds()
	}
	st.p50Ms = telemetry.SampleQuantile(lat, 0.50)
	st.p95Ms = telemetry.SampleQuantile(lat, 0.95)
	return st
}

// watchToTerminal rides the watch stream to the job's terminal event,
// re-attaching by job ID when a stream is severed short of terminal (server
// restart, dropped connection) — the v2 contract is that a fresh watch
// opens with a snapshot/recovered event, so a re-attached stream can still
// deliver the terminal state. Within the phase budget: a job confirmed
// terminal only by polling is a watch-terminal SLO violation; a job never
// confirmed terminal at all is a zero-lost violation.
func watchToTerminal(ctx context.Context, h *mqss.JobHandle, submitted time.Time) outcome {
	terminal := func(j *mqss.Job, viaWatch bool) outcome {
		return outcome{
			latMs:   float64(time.Since(submitted).Microseconds()) / 1000,
			failed:  j.State != mqss.StateDone,
			watchOK: viaWatch,
		}
	}
	for {
		j, err := h.Watch(ctx, nil)
		if err == nil && j != nil && j.State.Terminal() {
			return terminal(j, true)
		}
		if ctx.Err() != nil {
			// Phase budget exhausted: one unbudgeted poll classifies the miss.
			pollCtx, pollCancel := context.WithTimeout(context.Background(), time.Second)
			pj, perr := h.Poll(pollCtx)
			pollCancel()
			if perr == nil && pj.State.Terminal() {
				return terminal(pj, false)
			}
			return outcome{lost: true}
		}
		time.Sleep(5 * time.Millisecond)
	}
}
