// Package scenario is the fault-scenario lab: deterministic incident replay
// with SLO release gates. Each scenario is a Go-registered Spec — a fixed
// seed, a load profile, and three phases (warmup → inject → recovery) with
// typed fault hooks that reuse the stack's real failure machinery (injected
// QPU faults, calibration drift, paced exec latency, maintenance windows,
// deadline expiry, watch-stream churn). The Runner drives the whole stack —
// fleet scheduler, per-device QRM pipelines, and the MQSS v2 REST API over
// real HTTP with watch streams — through each scenario N >= 3 times,
// aggregates per-metric medians with a variance gate, and asserts the SLOs
// as release gates. Results land in the provenance-stamped
// BENCH_scenarios.json artifact; TestScenarioLab runs the suite in CI and
// `qhpcctl scenarios run` runs it from the operator CLI.
package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fleet"
)

// Phase names the three stages every scenario passes through.
type Phase string

const (
	// Warmup establishes the healthy baseline the recovery gate compares
	// against.
	Warmup Phase = "warmup"
	// Inject carries the fault: the Fault hook fires after half the phase's
	// load has been submitted, so the incident lands mid-batch with work in
	// flight.
	Inject Phase = "inject"
	// Recovery runs after the Recover hook undoes the fault; its throughput
	// must return to >= MinRecoveryRatio of warmup.
	Recovery Phase = "recovery"
)

// Phases lists the execution order.
var Phases = []Phase{Warmup, Inject, Recovery}

// FleetProfile sizes the simulated fleet a scenario runs against. Devices
// get deterministic per-index seeds derived from the scenario seed, twin
// (noiseless) QPUs so results are reproducible, and a paced exec latency so
// throughput is latency-bound like the fleet benches.
type FleetProfile struct {
	Devices     int
	Workers     int
	Rows, Cols  int
	ExecLatency time.Duration
	Policy      fleet.Policy
}

// LoadProfile shapes the measured load of each phase: Jobs GHZ submissions
// over the cycled Widths at Shots shots each, all through the v2 API. When
// Tenants > 0 the measured load is striped across that many users
// ("<User>-0" ... "<User>-N"), so the fairness scenarios can measure each
// victim tenant's latency separately from the aggressor's.
type LoadProfile struct {
	Jobs    int
	Shots   int
	Widths  []int
	User    string
	Tenants int
}

// AdmissionProfile configures the run's multi-tenant admission plane: a
// per-tenant token bucket on v2 submits (Rate/Burst, 0 = off) and queue-level
// load shedding (per-tenant depth bound and global high-water mark, 0 = off).
// The profile is applied when the stack is built and re-applied after a
// Crash, like qhpcd flags surviving a restart.
type AdmissionProfile struct {
	Rate           float64
	Burst          int
	MaxTenantQueue int
	HighWater      int
}

// SLO is the per-scenario release-gate contract. Zero-valued bounds fall
// back to the package defaults in fill().
type SLO struct {
	// P95Ms bounds the client-observed submit→terminal p95 latency
	// (milliseconds) per phase, checked against the median across reruns.
	P95Ms map[Phase]float64
	// MaxErrorRate bounds failed/jobs over the measured load of any phase,
	// checked against the worst rerun. Fault chaff (deadline-storm victims)
	// is tracked separately and exempt.
	MaxErrorRate float64
	// MinRecoveryRatio is the floor on recovery-phase throughput relative
	// to warmup (median across reruns). Default 0.9.
	MinRecoveryRatio float64
	// MaxSpreadPct is the variance gate: if warmup throughput across the
	// reruns spreads wider than this percentage, the run is flagged too
	// noisy to trust. Default 60.
	MaxSpreadPct float64
}

// Hooks are the typed fault actions of a scenario. All three receive the
// live Env and may touch QPUs, the scheduler, or spawn background load.
type Hooks struct {
	// Setup runs once after the stack is built, before warmup (e.g. attach
	// a maintenance plan).
	Setup func(*Env)
	// Fault injects the incident; it fires after half the inject-phase load
	// has been submitted.
	Fault func(*Env)
	// React is the control plane's response to the fault (mark the device
	// failed, drain it, ...). It runs immediately after Fault — and is the
	// half the negative control skips: a Runner with SkipReact set injects
	// the fault and withholds the response, which must trip a gate.
	React func(*Env)
	// Recover undoes the fault at the start of the recovery phase.
	Recover func(*Env)
	// Check runs once per rerun after the recovery phase with the stack
	// still alive; a non-nil error fails the scenario-check gate. It is the
	// hook for scenario-specific invariants the generic SLO gates cannot
	// express — e.g. per-tenant job conservation after an overload storm.
	Check func(*Env) error
}

// Spec is one registered scenario.
type Spec struct {
	Name        string
	Description string
	Seed        int64
	Fleet       FleetProfile
	Load        LoadProfile
	Admission   AdmissionProfile
	Hooks       Hooks
	SLO         SLO
}

// fill applies package defaults in place.
func (s *Spec) fill() {
	if s.Fleet.Devices == 0 {
		s.Fleet.Devices = 4
	}
	if s.Fleet.Workers == 0 {
		s.Fleet.Workers = 4
	}
	if s.Fleet.Rows == 0 {
		s.Fleet.Rows = 4
	}
	if s.Fleet.Cols == 0 {
		s.Fleet.Cols = 5
	}
	if s.Fleet.ExecLatency == 0 {
		s.Fleet.ExecLatency = 2 * time.Millisecond
	}
	if s.Fleet.Policy == "" {
		s.Fleet.Policy = fleet.PolicyLeastLoaded
	}
	if s.Load.Jobs == 0 {
		s.Load.Jobs = 32
	}
	if s.Load.Shots == 0 {
		s.Load.Shots = 10
	}
	if len(s.Load.Widths) == 0 {
		s.Load.Widths = []int{3, 4, 5, 6}
	}
	if s.Load.User == "" {
		s.Load.User = "scenario"
	}
	if s.SLO.P95Ms == nil {
		s.SLO.P95Ms = map[Phase]float64{}
	}
	for ph, def := range map[Phase]float64{Warmup: 250, Inject: 500, Recovery: 300} {
		if s.SLO.P95Ms[ph] == 0 {
			s.SLO.P95Ms[ph] = def
		}
	}
	if s.SLO.MinRecoveryRatio == 0 {
		s.SLO.MinRecoveryRatio = 0.9
	}
	if s.SLO.MaxSpreadPct == 0 {
		s.SLO.MaxSpreadPct = 60
	}
}

var (
	regMu    sync.Mutex
	registry = map[string]Spec{}
)

// Register adds a scenario to the lab. Names must be unique; the built-in
// suite registers itself from this package's init.
func Register(s Spec) {
	if s.Name == "" {
		panic("scenario: Register needs a name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// All returns every registered scenario sorted by name.
func All() []Spec {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds one scenario by name.
func Lookup(name string) (Spec, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}
