package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/mqss"
	"repro/internal/ops"
)

// The built-in incident suite. Each scenario replays one class of outage
// the stack claims to survive, through the real machinery that survives
// it: fleet failover/migration, epoch-keyed compile caches, least-loaded
// routing, queue deadlines, watch-stream fan-out, and maintenance drains.
// Seeds are fixed; reruns derive from them (see Provenance.SeedPolicy).

func init() {
	Register(deviceDeathMidBatch())
	Register(calibDriftMidJob())
	Register(slowStraggler())
	Register(watchChurn())
	Register(deadlineStorm())
	Register(maintenanceDrain())
	Register(nodeCrashRecovery())
	Register(tenantHog())
	Register(overloadStorm())
	Register(peerDeathReshard())
	Register(crossNodeWatch())
}

// conserveTenants asserts per-tenant job conservation on the live stack:
// every submission is accounted exactly once across terminal states and the
// queue — shed jobs fail loudly, they never vanish.
func conserveTenants(e *Env) error {
	for _, r := range e.Fleet.TenantUsage() {
		total := r.Completed + r.Failed + r.Cancelled + r.Interrupted + r.Shed + uint64(r.Queued)
		if r.Submitted != total {
			return fmt.Errorf("tenant %s: %d submitted but %d accounted (%+v)", r.User, r.Submitted, total, r)
		}
	}
	return nil
}

// deviceDeathMidBatch poisons one device's control electronics with a
// backlog in flight, then marks it failed. The failover machinery must
// migrate every interrupted job: zero failures surface to clients. The
// negative control (React withheld) leaves the device active-and-poisoned;
// fast failures make it look least-loaded, it attracts the batch, and the
// error-rate gate trips.
func deviceDeathMidBatch() Spec {
	const victim = 1
	return Spec{
		Name:        "device-death-midbatch",
		Description: "one QPU's control electronics die mid-batch; failover must migrate every interrupted job",
		Seed:        101,
		Hooks: Hooks{
			Fault: func(e *Env) { e.QPU(victim).InjectFaults(1 << 20) },
			React: func(e *Env) { e.Fleet.Fail(e.DeviceName(victim)) },
			Recover: func(e *Env) {
				e.QPU(victim).InjectFaults(0)
				e.Fleet.Recover(e.DeviceName(victim))
			},
		},
	}
}

// calibDriftMidJob ages every device's calibration repeatedly while jobs
// stream: each epoch bump invalidates the JIT-compile cache, so the
// pipeline must recompile under load without latency blowing the bound.
func calibDriftMidJob() Spec {
	return Spec{
		Name:        "calib-drift-midjob",
		Description: "calibration epochs churn under load; the compile cache must recompile without stalling the pipeline",
		Seed:        102,
		Hooks: Hooks{
			Fault: func(e *Env) {
				drift := func() {
					for _, name := range e.Names {
						e.QPUs[name].AdvanceDrift(6)
					}
				}
				drift()
				e.Go(func() {
					for {
						select {
						case <-e.InjectDone():
							return
						case <-time.After(15 * time.Millisecond):
							drift()
						}
					}
				})
			},
			Recover: func(e *Env) {
				for _, name := range e.Names {
					e.QPUs[name].Recalibrate(false)
				}
			},
		},
	}
}

// slowStraggler paces one device's exec latency 20x up mid-batch. The
// least-loaded policy must steer new work around the straggler; the jobs
// already queued there pay the tail, hence the looser inject p95 bound.
func slowStraggler() Spec {
	const victim = 2
	return Spec{
		Name:        "slow-straggler",
		Description: "one QPU turns 20x slower mid-batch; routing must steer around it",
		Seed:        103,
		Hooks: Hooks{
			Fault: func(e *Env) { e.QPU(victim).SetExecLatency(40 * time.Millisecond) },
			Recover: func(e *Env) {
				e.QPU(victim).SetExecLatency(e.Spec.Fleet.ExecLatency)
			},
		},
		SLO: SLO{P95Ms: map[Phase]float64{Inject: 1200}},
	}
}

// watchChurn hammers the v2 watch endpoint with short-lived clients that
// subscribe to live jobs and abandon the stream. The lossy event bus and
// the server's stream teardown must keep the measured watchers' terminal
// delivery intact.
func watchChurn() Spec {
	return Spec{
		Name:        "watch-churn",
		Description: "short-lived watch clients churn against live jobs; measured watch streams must still deliver terminal events",
		Seed:        104,
		Hooks: Hooks{
			Fault: func(e *Env) {
				for w := 0; w < 4; w++ {
					e.Go(func() {
						for {
							select {
							case <-e.InjectDone():
								return
							default:
							}
							id := e.RecentJobID()
							if id == "" {
								time.Sleep(time.Millisecond)
								continue
							}
							h, err := e.Client.Handle(id)
							if err != nil {
								continue
							}
							ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
							h.Watch(ctx, nil) // abandoned mid-stream on timeout
							cancel()
						}
					})
				}
			},
		},
	}
}

// deadlineStorm floods the queues with low-priority jobs whose dispatch
// deadline has effectively already passed. Every storm job must still
// reach a terminal (failed, deadline-exceeded) state — expiry is enforced
// at claim time — while the measured load's latency and error rate hold.
func deadlineStorm() Spec {
	return Spec{
		Name:        "deadline-storm",
		Description: "a burst of already-expired low-priority jobs floods the queues; all must terminate, measured load must hold",
		Seed:        105,
		Hooks: Hooks{
			Fault: func(e *Env) {
				ctx, cancel := context.WithTimeout(context.Background(), phaseTimeout)
				defer cancel()
				for i := 0; i < 48; i++ {
					e.SubmitChaff(ctx, mqss.SubmitRequest{
						Circuit:    circuit.GHZ(3 + i%3),
						Shots:      5,
						User:       "storm",
						Priority:   -1,
						DeadlineMs: 0.05,
					})
				}
			},
		},
	}
}

// nodeCrashRecovery kills the control node mid-batch — the durable store is
// abandoned with its group-commit buffer unflushed, exactly the disk state
// SIGKILL leaves — and reboots it from the same data directory on the same
// address. The WAL replay must bring back every acked job: terminal ones
// with results, in-flight ones re-queued under their original IDs, and the
// severed watch streams must re-attach and still deliver terminal events.
// The inject p95 bound absorbs the restart downtime the straddling jobs pay.
func nodeCrashRecovery() Spec {
	return Spec{
		Name:        "node-crash-recovery",
		Description: "kill -9 of the control node mid-batch; WAL replay must finish every acked job with no losses",
		Seed:        107,
		Hooks: Hooks{
			Setup: func(e *Env) {
				if err := e.EnableDurability(); err != nil {
					panic(err)
				}
			},
			Fault: func(e *Env) {
				if err := e.Crash(); err != nil {
					panic(err)
				}
			},
		},
		SLO: SLO{P95Ms: map[Phase]float64{Inject: 2500}},
	}
}

// tenantHog stripes the measured load across four tenants, then has a fifth
// flood the queues at 10x the whole measured batch. No rate limiter, no
// shedding: weighted-fair claiming alone must keep every victim tenant's
// inject p95 within 2x its warmup baseline (the default 250/500ms bounds)
// while the hog's backlog absorbs the wait. The Check hook pins the flood
// really landed and that every victim tenant still completed all its jobs.
func tenantHog() Spec {
	const victims = 4
	return Spec{
		Name:        "tenant-hog",
		Description: "one tenant floods submits at 10x the measured batch; WFQ must hold every other tenant near its baseline latency",
		Seed:        108,
		Load:        LoadProfile{Tenants: victims},
		Hooks: Hooks{
			Fault: func(e *Env) {
				flood := 10 * e.Spec.Load.Jobs
				e.Go(func() {
					ctx, cancel := context.WithTimeout(context.Background(), phaseTimeout)
					defer cancel()
					for i := 0; i < flood; i++ {
						if _, err := e.SubmitChaff(ctx, mqss.SubmitRequest{
							Circuit: circuit.GHZ(3 + i%3),
							Shots:   5,
							User:    "hog",
						}); err != nil {
							return
						}
					}
				})
			},
			Check: func(e *Env) error {
				if err := conserveTenants(e); err != nil {
					return err
				}
				perVictim := uint64(0)
				for _, r := range e.Fleet.TenantUsage() {
					if r.User == "hog" {
						continue
					}
					if r.Completed != r.Submitted {
						return fmt.Errorf("victim tenant %s lost throughput to the hog: %d/%d completed", r.User, r.Completed, r.Submitted)
					}
					if r.Submitted > perVictim {
						perVictim = r.Submitted
					}
				}
				for _, r := range e.Fleet.TenantUsage() {
					if r.User == "hog" {
						if r.Submitted < 5*perVictim {
							return fmt.Errorf("hog only reached %d submissions vs %d per victim: not a flood", r.Submitted, perVictim)
						}
						return nil
					}
				}
				return errors.New("hog tenant never showed up in the usage rows")
			},
		},
	}
}

// overloadStorm is the admission-control storm: ~1000 distinct best-effort
// users flood the queues far past capacity while eight measured tenants keep
// submitting. The queue-level shedder (per-device high-water mark) must shed
// the excess as loud retryable failures — never drop it — and the measured
// load must stay inside its (looser) latency bound. The Check hook asserts
// the shedder actually fired and that shed + completed + failed + queued
// equals submitted for every one of the ~1000 tenants.
func overloadStorm() Spec {
	return Spec{
		Name:        "overload-storm",
		Description: "a ~1000-user storm at far over capacity; admission must shed loudly, conserve every job, and hold the measured load's bound",
		Seed:        109,
		// Slow devices and a low high-water mark: capacity is what the storm
		// must exceed, and it must exceed it even when the race detector
		// halves the flood's submit rate — the default 2ms fleet drains
		// faster than loopback HTTP can flood. The measured load's burst
		// (jobs/devices ~ 8 per device) stays well under the mark.
		Fleet:     FleetProfile{ExecLatency: 25 * time.Millisecond},
		Load:      LoadProfile{Tenants: 8},
		Admission: AdmissionProfile{MaxTenantQueue: 48, HighWater: 24},
		Hooks: Hooks{
			Fault: func(e *Env) {
				stormUsers := 30 * e.Spec.Load.Jobs // ~1000 distinct users at lab scale
				// The storm arrives on parallel connections — a sequential
				// submitter cannot outrun the fleet's drain rate, and a storm
				// that never backs the queue up sheds nothing.
				const lanes = 16
				for lane := 0; lane < lanes; lane++ {
					lane := lane
					e.Go(func() {
						ctx, cancel := context.WithTimeout(context.Background(), phaseTimeout)
						defer cancel()
						for i := lane; i < stormUsers; i += lanes {
							if _, err := e.SubmitChaff(ctx, mqss.SubmitRequest{
								Circuit:  circuit.GHZ(3 + i%4),
								Shots:    5,
								User:     fmt.Sprintf("storm-%04d", i),
								Priority: -1,
							}); err != nil {
								return
							}
						}
					})
				}
			},
			Check: func(e *Env) error {
				if err := conserveTenants(e); err != nil {
					return err
				}
				if shed := e.Fleet.Metrics().Shed; shed == 0 {
					return errors.New("a storm at 30x the measured batch against a 24-deep high-water mark never tripped the shedder")
				}
				return nil
			},
		},
		SLO: SLO{P95Ms: map[Phase]float64{Inject: 1500}},
	}
}

// peerDeathReshard federates the stack into three full nodes, then kill -9s
// one peer mid-batch: the main node's failure detector must declare it dead
// on heartbeats alone, reads of its jobs must refuse with retryable 503s
// (never re-place — that would risk double execution), and the WAL-recovered
// reboot must re-admit every acked job under its original ID. The inject
// p95 bound absorbs the detection window plus the restart.
func peerDeathReshard() Spec {
	return Spec{
		Name:        "peer-death-reshard",
		Description: "kill -9 of one federation peer mid-batch; heartbeat death detection, retryable refusals, and WAL-recovered re-admission with no job lost or double-executed",
		Seed:        110,
		Fleet:       FleetProfile{Devices: 2},
		Hooks: Hooks{
			Setup: func(e *Env) {
				if err := e.EnableFederation(2); err != nil {
					panic(err)
				}
			},
			Fault: func(e *Env) {
				if err := e.CrashPeer(0); err != nil {
					panic(err)
				}
			},
			Check: func(e *Env) error {
				if err := fedConserve(e); err != nil {
					return err
				}
				m := e.Federation().Metrics()
				if m.ForwardedSubmits == 0 {
					return errors.New("no submission ever crossed nodes: the load was not sharded")
				}
				if m.HeartbeatsFailed == 0 {
					return errors.New("the dead peer never failed a heartbeat: the kill did not land")
				}
				p := e.Peers[0]
				if rs := p.LastRestore; rs.Terminal+rs.Requeued+rs.Expired == 0 {
					return fmt.Errorf("%s's WAL replay recovered nothing: the crash window held no acked jobs", p.Name)
				}
				return nil
			},
		},
		SLO: SLO{P95Ms: map[Phase]float64{Inject: 4000}},
	}
}

// crossNodeWatch federates the stack into three nodes and churns watch
// streams through every member against jobs they do not own, while the
// measured watches ride node-0 proxies to the owners. Every member must
// pass streams through transparently: the measured load's watch-terminal
// and latency gates hold with proxying on the path.
func crossNodeWatch() Spec {
	return Spec{
		Name:        "cross-node-watch",
		Description: "watch streams attach through non-owner federation members under churn; proxied streams must still deliver every terminal event",
		Seed:        111,
		Fleet:       FleetProfile{Devices: 2},
		Hooks: Hooks{
			Setup: func(e *Env) {
				if err := e.EnableFederation(2); err != nil {
					panic(err)
				}
			},
			Fault: func(e *Env) {
				// Short-lived watchers through each PEER node: the jobs they
				// watch were submitted through node-0, so most attach via a
				// cross-node proxy stream and abandon it mid-flight.
				for _, p := range e.Peers {
					p := p
					e.Go(func() {
						for {
							select {
							case <-e.InjectDone():
								return
							default:
							}
							id := e.RecentJobID()
							if id == "" {
								time.Sleep(time.Millisecond)
								continue
							}
							h, err := p.Client.Handle(id)
							if err != nil {
								continue
							}
							ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
							h.Watch(ctx, nil) // abandoned mid-stream on timeout
							cancel()
						}
					})
				}
			},
			Check: func(e *Env) error {
				if err := fedConserve(e); err != nil {
					return err
				}
				streams := e.Federation().Metrics().ProxiedStreams
				for _, p := range e.Peers {
					streams += p.fed.Metrics().ProxiedStreams
				}
				if streams == 0 {
					return errors.New("no watch stream ever crossed nodes")
				}
				if e.Federation().Metrics().ForwardedSubmits == 0 {
					return errors.New("no submission ever crossed nodes: the load was not sharded")
				}
				return nil
			},
		},
		// Warmup throughput here crosses three full node stacks over
		// loopback HTTP, which is noisier run to run than the in-process
		// suites; the watch-terminal and zero-lost gates carry the
		// correctness load, so the variance backstop gets headroom.
		SLO: SLO{MaxSpreadPct: 120},
	}
}

// maintenanceDrain advances the simulation clock into a scheduled window on
// one device while jobs stream: the drain must migrate its queue, and
// leaving the window must restore full-fleet throughput.
func maintenanceDrain() Spec {
	const victim = 3
	return Spec{
		Name:        "maintenance-drain",
		Description: "a scheduled maintenance window drains one device under load; exit must restore warmup throughput",
		Seed:        106,
		Hooks: Hooks{
			Setup: func(e *Env) {
				e.Fleet.SetMaintenancePlan(e.DeviceName(victim),
					[]ops.MaintenanceWindow{{StartDay: 1, Days: 1}})
			},
			Fault:   func(e *Env) { e.Fleet.AdvanceTo(1.5) },
			Recover: func(e *Env) { e.Fleet.AdvanceTo(2.5) },
		},
	}
}
