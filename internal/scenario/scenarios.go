package scenario

import (
	"context"
	"time"

	"repro/internal/circuit"
	"repro/internal/mqss"
	"repro/internal/ops"
)

// The built-in incident suite. Each scenario replays one class of outage
// the stack claims to survive, through the real machinery that survives
// it: fleet failover/migration, epoch-keyed compile caches, least-loaded
// routing, queue deadlines, watch-stream fan-out, and maintenance drains.
// Seeds are fixed; reruns derive from them (see Provenance.SeedPolicy).

func init() {
	Register(deviceDeathMidBatch())
	Register(calibDriftMidJob())
	Register(slowStraggler())
	Register(watchChurn())
	Register(deadlineStorm())
	Register(maintenanceDrain())
	Register(nodeCrashRecovery())
}

// deviceDeathMidBatch poisons one device's control electronics with a
// backlog in flight, then marks it failed. The failover machinery must
// migrate every interrupted job: zero failures surface to clients. The
// negative control (React withheld) leaves the device active-and-poisoned;
// fast failures make it look least-loaded, it attracts the batch, and the
// error-rate gate trips.
func deviceDeathMidBatch() Spec {
	const victim = 1
	return Spec{
		Name:        "device-death-midbatch",
		Description: "one QPU's control electronics die mid-batch; failover must migrate every interrupted job",
		Seed:        101,
		Hooks: Hooks{
			Fault: func(e *Env) { e.QPU(victim).InjectFaults(1 << 20) },
			React: func(e *Env) { e.Fleet.Fail(e.DeviceName(victim)) },
			Recover: func(e *Env) {
				e.QPU(victim).InjectFaults(0)
				e.Fleet.Recover(e.DeviceName(victim))
			},
		},
	}
}

// calibDriftMidJob ages every device's calibration repeatedly while jobs
// stream: each epoch bump invalidates the JIT-compile cache, so the
// pipeline must recompile under load without latency blowing the bound.
func calibDriftMidJob() Spec {
	return Spec{
		Name:        "calib-drift-midjob",
		Description: "calibration epochs churn under load; the compile cache must recompile without stalling the pipeline",
		Seed:        102,
		Hooks: Hooks{
			Fault: func(e *Env) {
				drift := func() {
					for _, name := range e.Names {
						e.QPUs[name].AdvanceDrift(6)
					}
				}
				drift()
				e.Go(func() {
					for {
						select {
						case <-e.InjectDone():
							return
						case <-time.After(15 * time.Millisecond):
							drift()
						}
					}
				})
			},
			Recover: func(e *Env) {
				for _, name := range e.Names {
					e.QPUs[name].Recalibrate(false)
				}
			},
		},
	}
}

// slowStraggler paces one device's exec latency 20x up mid-batch. The
// least-loaded policy must steer new work around the straggler; the jobs
// already queued there pay the tail, hence the looser inject p95 bound.
func slowStraggler() Spec {
	const victim = 2
	return Spec{
		Name:        "slow-straggler",
		Description: "one QPU turns 20x slower mid-batch; routing must steer around it",
		Seed:        103,
		Hooks: Hooks{
			Fault: func(e *Env) { e.QPU(victim).SetExecLatency(40 * time.Millisecond) },
			Recover: func(e *Env) {
				e.QPU(victim).SetExecLatency(e.Spec.Fleet.ExecLatency)
			},
		},
		SLO: SLO{P95Ms: map[Phase]float64{Inject: 1200}},
	}
}

// watchChurn hammers the v2 watch endpoint with short-lived clients that
// subscribe to live jobs and abandon the stream. The lossy event bus and
// the server's stream teardown must keep the measured watchers' terminal
// delivery intact.
func watchChurn() Spec {
	return Spec{
		Name:        "watch-churn",
		Description: "short-lived watch clients churn against live jobs; measured watch streams must still deliver terminal events",
		Seed:        104,
		Hooks: Hooks{
			Fault: func(e *Env) {
				for w := 0; w < 4; w++ {
					e.Go(func() {
						for {
							select {
							case <-e.InjectDone():
								return
							default:
							}
							id := e.RecentJobID()
							if id == "" {
								time.Sleep(time.Millisecond)
								continue
							}
							h, err := e.Client.Handle(id)
							if err != nil {
								continue
							}
							ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
							h.Watch(ctx, nil) // abandoned mid-stream on timeout
							cancel()
						}
					})
				}
			},
		},
	}
}

// deadlineStorm floods the queues with low-priority jobs whose dispatch
// deadline has effectively already passed. Every storm job must still
// reach a terminal (failed, deadline-exceeded) state — expiry is enforced
// at claim time — while the measured load's latency and error rate hold.
func deadlineStorm() Spec {
	return Spec{
		Name:        "deadline-storm",
		Description: "a burst of already-expired low-priority jobs floods the queues; all must terminate, measured load must hold",
		Seed:        105,
		Hooks: Hooks{
			Fault: func(e *Env) {
				ctx, cancel := context.WithTimeout(context.Background(), phaseTimeout)
				defer cancel()
				for i := 0; i < 48; i++ {
					e.SubmitChaff(ctx, mqss.SubmitRequest{
						Circuit:    circuit.GHZ(3 + i%3),
						Shots:      5,
						User:       "storm",
						Priority:   -1,
						DeadlineMs: 0.05,
					})
				}
			},
		},
	}
}

// nodeCrashRecovery kills the control node mid-batch — the durable store is
// abandoned with its group-commit buffer unflushed, exactly the disk state
// SIGKILL leaves — and reboots it from the same data directory on the same
// address. The WAL replay must bring back every acked job: terminal ones
// with results, in-flight ones re-queued under their original IDs, and the
// severed watch streams must re-attach and still deliver terminal events.
// The inject p95 bound absorbs the restart downtime the straddling jobs pay.
func nodeCrashRecovery() Spec {
	return Spec{
		Name:        "node-crash-recovery",
		Description: "kill -9 of the control node mid-batch; WAL replay must finish every acked job with no losses",
		Seed:        107,
		Hooks: Hooks{
			Setup: func(e *Env) {
				if err := e.EnableDurability(); err != nil {
					panic(err)
				}
			},
			Fault: func(e *Env) {
				if err := e.Crash(); err != nil {
					panic(err)
				}
			},
		},
		SLO: SLO{P95Ms: map[Phase]float64{Inject: 2500}},
	}
}

// maintenanceDrain advances the simulation clock into a scheduled window on
// one device while jobs stream: the drain must migrate its queue, and
// leaving the window must restore full-fleet throughput.
func maintenanceDrain() Spec {
	const victim = 3
	return Spec{
		Name:        "maintenance-drain",
		Description: "a scheduled maintenance window drains one device under load; exit must restore warmup throughput",
		Seed:        106,
		Hooks: Hooks{
			Setup: func(e *Env) {
				e.Fleet.SetMaintenancePlan(e.DeviceName(victim),
					[]ops.MaintenanceWindow{{StartDay: 1, Days: 1}})
			},
			Fault:   func(e *Env) { e.Fleet.AdvanceTo(1.5) },
			Recover: func(e *Env) { e.Fleet.AdvanceTo(2.5) },
		},
	}
}
