package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram is a fixed-bucket latency/size histogram, safe for concurrent
// use — the aggregation primitive behind the QRM dispatch pipeline's
// queue-depth and latency metrics. Bounds are upper bucket edges; a final
// implicit +Inf bucket catches overflow.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1
	sum    float64
	count  uint64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}, nil
}

// ExponentialBounds returns n ascending bounds starting at start, each
// factor× the previous — the usual shape for latency histograms.
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot returns a consistent copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		s.Min = h.min
		s.Max = h.max
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket. Values in the overflow bucket report the
// observed max.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			if i == len(s.Bounds) {
				return s.Max
			}
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if hi > s.Max {
				hi = s.Max
			}
			if lo > hi {
				lo = hi
			}
			frac := 0.5
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Max
}
