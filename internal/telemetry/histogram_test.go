package telemetry

import (
	"sync"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds should fail")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("descending bounds should fail")
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 5, 50, 500, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Min != 0.5 || s.Max != 500 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	want := []uint64{1, 2, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if s.Mean != (0.5+5+50+500+5)/5 {
		t.Errorf("mean = %g", s.Mean)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(ExponentialBounds(1, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 32 || p50 > 72 {
		t.Errorf("p50 = %g, want roughly 50 within bucket resolution", p50)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("p100 = %g, want 100", got)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h, err := NewHistogram(ExponentialBounds(1, 10, 6))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}
