package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PromWriter renders counters, gauges and histogram snapshots in the
// Prometheus text exposition format (version 0.0.4) without any external
// dependency: one `# HELP`/`# TYPE` header per family, then one sample
// line per label set. Families render in first-seen order so the output
// is deterministic for golden-style checks.
type PromWriter struct {
	order    []string
	families map[string]*promFamily
}

type promFamily struct {
	help  string
	kind  string // "counter", "gauge", "histogram"
	lines []string
}

// NewPromWriter returns an empty exposition builder.
func NewPromWriter() *PromWriter {
	return &PromWriter{families: make(map[string]*promFamily)}
}

func (w *PromWriter) family(name, help, kind string) *promFamily {
	f, ok := w.families[name]
	if !ok {
		f = &promFamily{help: help, kind: kind}
		w.families[name] = f
		w.order = append(w.order, name)
	}
	return f
}

// Labels is an ordered list of label key/value pairs. Order is preserved
// verbatim so output stays deterministic.
type Labels [][2]string

func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Counter adds one cumulative counter sample to the named family.
func (w *PromWriter) Counter(name, help string, labels Labels, value float64) {
	f := w.family(name, help, "counter")
	f.lines = append(f.lines, fmt.Sprintf("%s%s %s", name, labels, formatValue(value)))
}

// Gauge adds one gauge sample to the named family.
func (w *PromWriter) Gauge(name, help string, labels Labels, value float64) {
	f := w.family(name, help, "gauge")
	f.lines = append(f.lines, fmt.Sprintf("%s%s %s", name, labels, formatValue(value)))
}

// Histogram renders a HistogramSnapshot as cumulative le-buckets plus
// _sum and _count, matching Prometheus histogram semantics. Snapshot
// Counts are per-bucket (len(Bounds)+1 with the overflow bucket last);
// this accumulates them into the required cumulative form.
func (w *PromWriter) Histogram(name, help string, labels Labels, h HistogramSnapshot) {
	f := w.family(name, help, "histogram")
	cum := uint64(0)
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		ls := append(append(Labels{}, labels...), [2]string{"le", formatValue(bound)})
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d", name, ls, cum))
	}
	ls := append(append(Labels{}, labels...), [2]string{"le", "+Inf"})
	f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d", name, ls, h.Count))
	f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s", name, labels, formatValue(h.Sum)))
	f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", name, labels, h.Count))
}

// WriteTo emits the full exposition. Families appear in first-seen order;
// samples within a family in insertion order.
func (w *PromWriter) WriteTo(out io.Writer) (int64, error) {
	var b strings.Builder
	for _, name := range w.order {
		f := w.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		for _, l := range f.lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(out, b.String())
	return int64(n), err
}

// FamilyNames returns the metric family names added so far, sorted — used
// by the docs cross-check test.
func (w *PromWriter) FamilyNames() []string {
	names := append([]string(nil), w.order...)
	sort.Strings(names)
	return names
}
