package telemetry

import (
	"strings"
	"testing"
)

func TestPromWriterBasics(t *testing.T) {
	w := NewPromWriter()
	w.Counter("qhpc_jobs_total", "Jobs submitted.", nil, 42)
	w.Counter("qhpc_jobs_total", "", Labels{{"device", "d0"}}, 7)
	w.Gauge("qhpc_queue_depth", "Current depth.", Labels{{"device", `a"b\c`}}, 3)

	var b strings.Builder
	if _, err := w.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, s := range []string{
		"# HELP qhpc_jobs_total Jobs submitted.",
		"# TYPE qhpc_jobs_total counter",
		"qhpc_jobs_total 42",
		`qhpc_jobs_total{device="d0"} 7`,
		"# TYPE qhpc_queue_depth gauge",
		`qhpc_queue_depth{device="a\"b\\c"} 3`,
	} {
		if !strings.Contains(out, s+"\n") {
			t.Errorf("missing line %q in:\n%s", s, out)
		}
	}
	// HELP/TYPE must appear exactly once per family.
	if n := strings.Count(out, "# TYPE qhpc_jobs_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times", n)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	w := NewPromWriter()
	w.Histogram("qhpc_latency_ms", "Latency.", Labels{{"stage", "exec"}}, h.Snapshot())
	var b strings.Builder
	w.WriteTo(&b)
	out := b.String()
	for _, s := range []string{
		`qhpc_latency_ms_bucket{stage="exec",le="1"} 1`,
		`qhpc_latency_ms_bucket{stage="exec",le="2"} 2`,
		`qhpc_latency_ms_bucket{stage="exec",le="4"} 3`,
		`qhpc_latency_ms_bucket{stage="exec",le="+Inf"} 4`,
		`qhpc_latency_ms_sum{stage="exec"} 105`,
		`qhpc_latency_ms_count{stage="exec"} 4`,
	} {
		if !strings.Contains(out, s+"\n") {
			t.Errorf("missing %q in:\n%s", s, out)
		}
	}
}
