package telemetry

import "sort"

// This file is the small-sample statistics kit behind the rerun policy:
// every gated performance number in the repo (fleet bench, sim bench, the
// scenario lab) is now the median of N >= 3 seeded reruns with a relative
// spread attached, instead of a single run. Medians resist the one-off CI
// hiccup; the spread is the variance gate's input — a number whose reruns
// disagree too much is flagged as too noisy to trust rather than compared
// against a threshold.

// P95 is the conventional tail-latency quantile of a histogram snapshot —
// shorthand for Quantile(0.95), the bound the scenario SLO gates check.
func (s HistogramSnapshot) P95() float64 { return s.Quantile(0.95) }

// Median returns the middle value of xs (mean of the central pair for even
// lengths). xs is not modified. Returns 0 for an empty slice.
func Median(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// SpreadPct measures rerun dispersion as (max-min)/median in percent — the
// variance-gate statistic. A single sample (or an all-zero series) spreads
// 0 by definition.
func SpreadPct(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	med := Median(xs)
	if med == 0 {
		return 0
	}
	return (max - min) / med * 100
}

// SampleQuantile returns the q-quantile of raw samples by nearest-rank on
// the sorted copy — exact for the small per-phase latency sets the scenario
// runner collects, where histogram interpolation would blur the tail.
func SampleQuantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[int(q*float64(len(sorted)-1))]
}
