package telemetry

import (
	"math"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{10, 10, 10}, 10},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// The input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestSpreadPct(t *testing.T) {
	if got := SpreadPct([]float64{100}); got != 0 {
		t.Errorf("single sample spread = %v, want 0", got)
	}
	// (110-90)/100 = 20%
	if got := SpreadPct([]float64{90, 100, 110}); math.Abs(got-20) > 1e-9 {
		t.Errorf("spread = %v, want 20", got)
	}
	if got := SpreadPct([]float64{0, 0}); got != 0 {
		t.Errorf("zero-median spread = %v, want 0", got)
	}
}

func TestSampleQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7} // sorted: 1 3 5 7 9
	if got := SampleQuantile(xs, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := SampleQuantile(xs, 1); got != 9 {
		t.Errorf("p100 = %v, want 9", got)
	}
	if got := SampleQuantile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := SampleQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramP95(t *testing.T) {
	h, err := NewHistogram(ExponentialBounds(1, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if got, want := s.P95(), s.Quantile(0.95); got != want {
		t.Errorf("P95() = %v, Quantile(0.95) = %v", got, want)
	}
	if s.P95() < 64 || s.P95() > 100 {
		t.Errorf("P95() = %v outside plausible range", s.P95())
	}
}
