// Package telemetry is the reproduction of the paper's DCDB deployment
// (§3.1, Fig. 3): a plugin-based system for continuous collection of
// operational and environmental metrics — cryostat temperatures, power
// draw, qubit fidelities, job counters — aggregated into a queryable store
// so that users, operators and the JIT compiler can consume live data
// "without altering workflows".
//
// Time is simulation time in seconds (float64), never the wall clock, so
// 146-day campaigns replay deterministically in milliseconds.
package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Sample is one timestamped metric observation.
type Sample struct {
	Time  float64 `json:"t"` // simulation seconds
	Value float64 `json:"v"`
}

// Store is the time-series database: one ordered series per sensor name.
// All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	series map[string][]Sample
	// maxPerSeries bounds memory; oldest samples are dropped first.
	maxPerSeries int
}

// NewStore returns an empty store retaining up to maxPerSeries samples per
// sensor (0 means unlimited).
func NewStore(maxPerSeries int) *Store {
	return &Store{series: make(map[string][]Sample), maxPerSeries: maxPerSeries}
}

// Append records a sample. Out-of-order appends are accepted and kept
// sorted (DCDB tolerates delayed plugin pushes).
func (s *Store) Append(sensor string, t, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.series[sensor]
	if n := len(ser); n > 0 && ser[n-1].Time > t {
		// Insert preserving order (rare path).
		i := sort.Search(n, func(i int) bool { return ser[i].Time > t })
		ser = append(ser, Sample{})
		copy(ser[i+1:], ser[i:])
		ser[i] = Sample{Time: t, Value: v}
	} else {
		ser = append(ser, Sample{Time: t, Value: v})
	}
	if s.maxPerSeries > 0 && len(ser) > s.maxPerSeries {
		ser = ser[len(ser)-s.maxPerSeries:]
	}
	s.series[sensor] = ser
}

// Sensors returns the sorted list of known sensor names.
func (s *Store) Sensors() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for name := range s.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Latest returns the most recent sample of a sensor.
func (s *Store) Latest(sensor string) (Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.series[sensor]
	if len(ser) == 0 {
		return Sample{}, false
	}
	return ser[len(ser)-1], true
}

// Query returns all samples of sensor with from <= Time <= to.
func (s *Store) Query(sensor string, from, to float64) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.series[sensor]
	lo := sort.Search(len(ser), func(i int) bool { return ser[i].Time >= from })
	hi := sort.Search(len(ser), func(i int) bool { return ser[i].Time > to })
	if lo >= hi {
		return nil
	}
	out := make([]Sample, hi-lo)
	copy(out, ser[lo:hi])
	return out
}

// Count returns the number of stored samples for sensor.
func (s *Store) Count(sensor string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series[sensor])
}

// Aggregate summarises a sensor over [from, to].
type Aggregate struct {
	Count          int
	Mean, Min, Max float64
	First, Last    Sample
}

// Aggregate computes summary statistics over a window.
func (s *Store) Aggregate(sensor string, from, to float64) (Aggregate, error) {
	samples := s.Query(sensor, from, to)
	if len(samples) == 0 {
		return Aggregate{}, fmt.Errorf("telemetry: no samples for %q in [%g, %g]", sensor, from, to)
	}
	agg := Aggregate{
		Count: len(samples),
		Min:   samples[0].Value,
		Max:   samples[0].Value,
		First: samples[0],
		Last:  samples[len(samples)-1],
	}
	sum := 0.0
	for _, smp := range samples {
		sum += smp.Value
		if smp.Value < agg.Min {
			agg.Min = smp.Value
		}
		if smp.Value > agg.Max {
			agg.Max = smp.Value
		}
	}
	agg.Mean = sum / float64(len(samples))
	return agg, nil
}

// WriteCSV exports one sensor's series as "time,value" rows.
func (s *Store) WriteCSV(w io.Writer, sensor string) error {
	samples := s.Query(sensor, 0, 1e300)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", sensor}); err != nil {
		return fmt.Errorf("telemetry: csv header: %w", err)
	}
	for _, smp := range samples {
		rec := []string{
			strconv.FormatFloat(smp.Time, 'g', -1, 64),
			strconv.FormatFloat(smp.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("telemetry: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// MarshalSeriesJSON exports one sensor's series as JSON — the transparent
// dissemination path users and external tools asked for (§3.1).
func (s *Store) MarshalSeriesJSON(sensor string) ([]byte, error) {
	samples := s.Query(sensor, 0, 1e300)
	return json.Marshal(map[string]interface{}{
		"sensor":  sensor,
		"samples": samples,
	})
}

// Collector is the plugin interface: anything that can report metrics.
type Collector interface {
	// CollectorName identifies the plugin in diagnostics.
	CollectorName() string
	// Collect returns the current metric values keyed by sensor name.
	Collect() map[string]float64
}

// Poller drives a set of collector plugins, pushing their metrics into the
// store at each Poll — DCDB's continuous collection loop, with the cadence
// under the simulation's control.
type Poller struct {
	mu         sync.Mutex
	store      *Store
	collectors []Collector
}

// NewPoller builds a poller over the store.
func NewPoller(store *Store) *Poller {
	return &Poller{store: store}
}

// Register adds a collector plugin.
func (p *Poller) Register(c Collector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.collectors = append(p.collectors, c)
}

// CollectorNames lists registered plugins.
func (p *Poller) CollectorNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.collectors))
	for i, c := range p.collectors {
		out[i] = c.CollectorName()
	}
	return out
}

// Poll gathers one round of metrics at simulation time t.
func (p *Poller) Poll(t float64) {
	p.mu.Lock()
	collectors := append([]Collector(nil), p.collectors...)
	p.mu.Unlock()
	for _, c := range collectors {
		for sensor, value := range c.Collect() {
			p.store.Append(sensor, t, value)
		}
	}
}

// FuncCollector adapts a function to the Collector interface.
type FuncCollector struct {
	Name string
	Fn   func() map[string]float64
}

// CollectorName implements Collector.
func (f FuncCollector) CollectorName() string { return f.Name }

// Collect implements Collector.
func (f FuncCollector) Collect() map[string]float64 { return f.Fn() }
