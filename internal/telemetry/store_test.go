package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAndLatest(t *testing.T) {
	s := NewStore(0)
	if _, ok := s.Latest("none"); ok {
		t.Error("empty sensor should have no latest")
	}
	s.Append("temp", 1, 20.5)
	s.Append("temp", 2, 21.0)
	got, ok := s.Latest("temp")
	if !ok || got.Value != 21.0 || got.Time != 2 {
		t.Errorf("latest = %+v, ok=%v", got, ok)
	}
}

func TestQueryWindow(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 10; i++ {
		s.Append("x", float64(i), float64(i*i))
	}
	got := s.Query("x", 3, 6)
	if len(got) != 4 {
		t.Fatalf("window size = %d, want 4", len(got))
	}
	if got[0].Time != 3 || got[3].Time != 6 {
		t.Errorf("window bounds wrong: %+v", got)
	}
	if s.Query("x", 100, 200) != nil {
		t.Error("out-of-range query should be nil")
	}
	if s.Query("missing", 0, 10) != nil {
		t.Error("unknown sensor should be nil")
	}
}

func TestOutOfOrderAppendStaysSorted(t *testing.T) {
	s := NewStore(0)
	s.Append("x", 5, 50)
	s.Append("x", 1, 10)
	s.Append("x", 3, 30)
	all := s.Query("x", 0, 10)
	if len(all) != 3 {
		t.Fatalf("count = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Time > all[i].Time {
			t.Fatalf("series unsorted: %+v", all)
		}
	}
	if all[1].Value != 30 {
		t.Errorf("middle sample = %+v", all[1])
	}
}

func TestSortedInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(0)
		for i := 0; i < 100; i++ {
			s.Append("p", rng.Float64()*1000, rng.NormFloat64())
		}
		all := s.Query("p", -1, 2000)
		for i := 1; i < len(all); i++ {
			if all[i-1].Time > all[i].Time {
				return false
			}
		}
		return len(all) == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionLimit(t *testing.T) {
	s := NewStore(5)
	for i := 0; i < 20; i++ {
		s.Append("x", float64(i), float64(i))
	}
	if got := s.Count("x"); got != 5 {
		t.Errorf("retained = %d, want 5", got)
	}
	first := s.Query("x", 0, 100)[0]
	if first.Time != 15 {
		t.Errorf("oldest retained = %g, want 15", first.Time)
	}
}

func TestAggregate(t *testing.T) {
	s := NewStore(0)
	for i, v := range []float64{2, 4, 6, 8} {
		s.Append("x", float64(i), v)
	}
	agg, err := s.Aggregate("x", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 4 || agg.Mean != 5 || agg.Min != 2 || agg.Max != 8 {
		t.Errorf("agg = %+v", agg)
	}
	if agg.First.Value != 2 || agg.Last.Value != 8 {
		t.Errorf("first/last = %+v / %+v", agg.First, agg.Last)
	}
	if _, err := s.Aggregate("x", 100, 200); err == nil {
		t.Error("expected error for empty window")
	}
}

func TestSensorsSorted(t *testing.T) {
	s := NewStore(0)
	s.Append("zeta", 0, 1)
	s.Append("alpha", 0, 1)
	s.Append("mid", 0, 1)
	got := s.Sensors()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sensors = %v", got)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewStore(0)
	s.Append("power_kw", 0, 16)
	s.Append("power_kw", 60, 17.5)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf, "power_kw"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "time_s,power_kw") || !strings.Contains(out, "17.5") {
		t.Errorf("csv output:\n%s", out)
	}
	lines := strings.Count(strings.TrimSpace(out), "\n") + 1
	if lines != 3 {
		t.Errorf("csv lines = %d, want 3", lines)
	}
}

func TestMarshalSeriesJSON(t *testing.T) {
	s := NewStore(0)
	s.Append("f_cz", 100, 0.991)
	data, err := s.MarshalSeriesJSON("f_cz")
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Sensor  string   `json:"sensor"`
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Sensor != "f_cz" || len(decoded.Samples) != 1 || decoded.Samples[0].Value != 0.991 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestPollerDrivesCollectors(t *testing.T) {
	store := NewStore(0)
	p := NewPoller(store)
	calls := 0
	p.Register(FuncCollector{
		Name: "cryo",
		Fn: func() map[string]float64 {
			calls++
			return map[string]float64{"mxc_temp_k": 0.010, "ln2_l": 18}
		},
	})
	p.Register(FuncCollector{
		Name: "power",
		Fn:   func() map[string]float64 { return map[string]float64{"power_kw": 16} },
	})
	if names := p.CollectorNames(); len(names) != 2 || names[0] != "cryo" {
		t.Errorf("collector names = %v", names)
	}
	p.Poll(0)
	p.Poll(60)
	if calls != 2 {
		t.Errorf("collector called %d times, want 2", calls)
	}
	if got := store.Count("mxc_temp_k"); got != 2 {
		t.Errorf("mxc samples = %d, want 2", got)
	}
	if got := store.Count("power_kw"); got != 2 {
		t.Errorf("power samples = %d, want 2", got)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Append("shared", float64(w*200+i), float64(i))
				s.Latest("shared")
				s.Query("shared", 0, 1e9)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Count("shared"); got != 1600 {
		t.Errorf("count = %d, want 1600", got)
	}
}

func TestAggregateMeanMatchesManual(t *testing.T) {
	s := NewStore(0)
	rng := rand.New(rand.NewSource(55))
	sum := 0.0
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64()
		sum += v
		s.Append("x", float64(i), v)
	}
	agg, err := s.Aggregate("x", 0, 499)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg.Mean-sum/500) > 1e-12 {
		t.Errorf("mean = %g, want %g", agg.Mean, sum/500)
	}
}
