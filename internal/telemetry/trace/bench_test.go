package trace

import "testing"

// The trace slab is allocated whole per job, so New dominates tracing's
// cost; the fleet bench's tracing-overhead gate (BENCH_fleet.json) holds
// the end-to-end budget, these track the micro costs.

var sink *Trace

func BenchmarkNewTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = New("job", Int("job_id", i))
	}
}

// BenchmarkFullJobTrace is one representative single-device job timeline:
// root + queue-wait/compile/execute + engine-compile/simulate.
func BenchmarkFullJobTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New("job", Int("job_id", i), Str("user", "bench"))
		root := tr.Root()
		qw := root.StartChild("queue-wait")
		qw.End()
		cs := root.StartChild("compile")
		cs.End(Str("cache", "hit"))
		ex := root.StartChild("execute", Int("shots", 10), Int("gates", 12))
		ec := ex.StartChild("engine-compile")
		ec.End(Str("cache", "hit"))
		sim := ex.StartChild("simulate")
		sim.End(Str("strategy", "fast-path"))
		ex.End()
		root.End(Str("outcome", "done"))
		sink = tr
	}
}
