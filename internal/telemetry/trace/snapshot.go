package trace

import (
	"strings"
	"time"
)

// SpanSnapshot is one node of a rendered span tree. Times are relative to
// the trace root in microseconds so waterfalls line up without clock math.
type SpanSnapshot struct {
	Name       string            `json:"name"`
	StartUs    float64           `json:"start_us"`
	DurationUs float64           `json:"duration_us"`
	InProgress bool              `json:"in_progress,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanSnapshot   `json:"children,omitempty"`
}

// Snapshot is a consistent point-in-time view of a whole trace.
type Snapshot struct {
	DurationUs   float64       `json:"duration_us"`
	Complete     bool          `json:"complete"`
	DroppedSpans uint64        `json:"dropped_spans,omitempty"`
	Root         *SpanSnapshot `json:"root"`
}

// Snapshot renders the span tree without blocking writers: it acquire-loads
// each span's state word and only reads slots already published. Spans still
// running are reported with duration up to now and in_progress set. Returns
// nil for a nil trace.
func (t *Trace) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	n := int(t.claim.Load())
	if n > maxSpans {
		n = maxSpans
	}
	now := int64(time.Since(t.epoch))
	nodes := make([]*SpanSnapshot, n)
	var root *SpanSnapshot
	complete := true
	for i := 0; i < n; i++ {
		sp := &t.spans[i]
		st := sp.state.Load()
		if st == spanFree {
			continue // slot claimed but not yet committed
		}
		node := &SpanSnapshot{
			Name:    sp.name,
			StartUs: float64(sp.start) / 1e3,
		}
		if end := sp.end.Load(); st == spanEnded && end != 0 {
			node.DurationUs = float64(end-sp.start) / 1e3
		} else {
			node.DurationUs = float64(now-sp.start) / 1e3
			node.InProgress = true
			complete = false
		}
		if node.DurationUs < 0 {
			node.DurationUs = 0
		}
		na := int(sp.attrClaim.Load())
		if na > maxAttrs {
			na = maxAttrs
		}
		for a := 0; a < na; a++ {
			cell := &sp.attrs[a]
			if cell.ready.Load() != 1 {
				continue
			}
			sep := strings.IndexByte(cell.kv, 0)
			if sep < 0 {
				continue
			}
			if node.Attrs == nil {
				node.Attrs = make(map[string]string, na)
			}
			node.Attrs[cell.kv[:sep]] = cell.kv[sep+1:]
		}
		nodes[i] = node
		if sp.parent < 0 {
			root = node
		} else if p := nodes[sp.parent]; p != nil {
			// Slab order is claim order, so parents always precede children.
			p.Children = append(p.Children, node)
		}
	}
	if root == nil {
		return nil
	}
	snap := &Snapshot{
		DurationUs:   root.DurationUs,
		Complete:     complete,
		DroppedSpans: t.dropped.Load(),
		Root:         root,
	}
	return snap
}

// Dropped reports how many spans were discarded due to slab exhaustion.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
