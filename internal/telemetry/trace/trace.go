// Package trace records lightweight per-job span trees: every job carries
// one Trace from submission to its terminal state, and each pipeline stage
// (queue-wait, routing, compile, execute, simulate) claims a span with
// monotonic start/end times and a handful of string attributes.
//
// The design goal is zero locks on the hot path. A Trace preallocates a
// fixed slab of spans; StartChild claims a slot with a single atomic
// counter increment, writes the span fields, and publishes them with a
// release store on the span's state word. Readers (the /trace endpoint,
// the waterfall renderer) take a consistent snapshot by acquire-loading
// each state word — a span is either invisible, started, or ended; torn
// reads are impossible and no mutex is ever taken. When the slab fills,
// further spans degrade to no-ops and a dropped counter records the loss.
//
// Traces are intentionally not free-listed: a terminal job's trace stays
// reachable from the retention ring until evicted, and in-flight snapshot
// readers may hold the pointer past eviction, so recycling would race.
// The GC reclaims evicted traces once the last reader drops them.
package trace

import (
	"context"
	"sync/atomic"
	"time"
)

// enabled is the global kill-switch. Tracing is on by default; benches
// flip it off to measure overhead and prove the always-on cost is small.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns trace collection on or off globally. With tracing off,
// New returns nil and every Span/Trace method is a nil-safe no-op, so the
// instrumented call sites pay only a pointer nil-check.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether trace collection is currently on.
func Enabled() bool { return enabled.Load() }

const (
	// maxSpans bounds the slab: a fleet job's deepest timeline today is
	// root + route/park/on-device legs + queue-wait/compile/execute +
	// engine-compile/simulate/pace (~10 spans), plus headroom for a few
	// migration retries (+2 spans per leg). Kept tight on purpose — the
	// whole slab is allocated and zeroed per job, and its size is the
	// dominant tracing cost against the ≤5% throughput budget.
	maxSpans = 24
	// maxAttrs bounds per-span attributes; the widest span today carries 5
	// (root: job_id, user, request_id, outcome, error) — one slot spare.
	maxAttrs = 6
)

// span states, published via release-store on span.state.
const (
	spanFree    uint32 = 0 // slot not yet committed
	spanStarted uint32 = 1 // name/parent/start visible
	spanEnded   uint32 = 2 // end time and end-attrs visible
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: itoa(int64(v))} }

// Int64 builds an integer attribute from an int64.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: itoa(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	if v {
		return Attr{Key: k, Value: "true"}
	}
	return Attr{Key: k, Value: "false"}
}

// itoa avoids strconv to keep the hot path allocation-free for small ints.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// attrCell is one attribute slot. Cells are claimed with an atomic counter
// and individually published via ready, so two goroutines annotating the
// same span concurrently (e.g. the HTTP handler stamping request_id while
// the worker stamps outcome) never tear each other's writes. Key and value
// are packed into one NUL-separated string: the whole slab is allocated
// per job, so every field here is paid maxSpans*maxAttrs times.
type attrCell struct {
	kv    string // key + "\x00" + value
	ready atomic.Uint32
}

// span is one slab entry. name/parent/start are written once by the
// claiming goroutine before the release-store on state; readers
// acquire-load state first. end is atomic because End may race with
// snapshot readers (and a second, losing End call).
type span struct {
	name      string
	parent    int32 // slab index of parent, -1 for root
	start     int64 // ns since trace epoch (monotonic)
	end       atomic.Int64
	attrs     [maxAttrs]attrCell
	attrClaim atomic.Int32
	state     atomic.Uint32
}

func (s *span) addAttrs(attrs []Attr) {
	for _, a := range attrs {
		i := s.attrClaim.Add(1) - 1
		if int(i) >= maxAttrs {
			return
		}
		s.attrs[i].kv = a.Key + "\x00" + a.Value
		s.attrs[i].ready.Store(1)
	}
}

// Trace is one job's span tree. Safe for concurrent use: span slots are
// claimed atomically and snapshots never block writers.
type Trace struct {
	epoch   time.Time // monotonic base for all span timestamps
	spans   [maxSpans]span
	claim   atomic.Int32
	dropped atomic.Uint64
}

// New allocates a trace with a root span of the given name, or nil when
// tracing is globally disabled. All methods on a nil *Trace are no-ops.
func New(rootName string, attrs ...Attr) *Trace {
	if !enabled.Load() {
		return nil
	}
	t := &Trace{epoch: time.Now()}
	t.claim.Store(1)
	root := &t.spans[0]
	root.name = rootName
	root.parent = -1
	root.start = 0
	root.addAttrs(attrs)
	root.state.Store(spanStarted)
	return t
}

// Root returns the root span handle, or nil for a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, idx: 0}
}

// Span is a handle to one slab entry. The zero value and nil are inert.
type Span struct {
	t   *Trace
	idx int32
}

// Trace returns the trace this span belongs to (nil for a nil span) —
// how a layer handed only a parent span reaches the tree for retention.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.t
}

// StartChild claims a new span under s. On slab exhaustion it counts a
// drop and returns nil, which End/SetAttr/StartChild all tolerate, so
// call sites need no branch between start and end.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	t := s.t
	i := t.claim.Add(1) - 1
	if int(i) >= maxSpans {
		t.dropped.Add(1)
		return nil
	}
	sp := &t.spans[i]
	sp.name = name
	sp.parent = s.idx
	sp.start = int64(time.Since(t.epoch))
	sp.addAttrs(attrs)
	sp.state.Store(spanStarted)
	return &Span{t: t, idx: i}
}

// End marks the span finished, optionally attaching final attributes.
// Idempotent: the first caller to land the end time wins; later End
// calls only contribute their attrs. The end store precedes the state
// flip, so any reader that observes spanEnded also sees the end time.
func (s *Span) End(attrs ...Attr) {
	if s == nil || s.t == nil {
		return
	}
	sp := &s.t.spans[s.idx]
	if len(attrs) > 0 {
		sp.addAttrs(attrs)
	}
	end := int64(time.Since(s.t.epoch))
	if end == 0 {
		end = 1 // keep 0 reserved as "not ended"
	}
	sp.end.CompareAndSwap(0, end)
	sp.state.CompareAndSwap(spanStarted, spanEnded)
}

// SetAttr attaches an attribute to a live or ended span.
func (s *Span) SetAttr(k, v string) {
	if s == nil || s.t == nil {
		return
	}
	s.t.spans[s.idx].addAttrs([]Attr{{Key: k, Value: v}})
}

type ctxKey struct{}

// ContextWithSpan returns a context carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext extracts the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of the span carried in ctx and returns both a
// context carrying the new span and its handle. With no span in ctx (or
// tracing off) it returns ctx unchanged and a nil handle.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name, attrs...)
	if child == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, child), child
}
