package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBasicTree(t *testing.T) {
	tr := New("job", Str("user", "alice"))
	if tr == nil {
		t.Fatal("New returned nil with tracing enabled")
	}
	root := tr.Root()
	qw := root.StartChild("queue-wait")
	time.Sleep(time.Millisecond)
	qw.End()
	ex := root.StartChild("execute", Str("device", "d0"))
	sim := ex.StartChild("simulate", Str("strategy", "fast-path"))
	sim.End()
	ex.End()
	root.End(Str("outcome", "done"))

	snap := tr.Snapshot()
	if snap == nil || snap.Root == nil {
		t.Fatal("nil snapshot")
	}
	if !snap.Complete {
		t.Errorf("snapshot not complete: %+v", snap)
	}
	if snap.Root.Name != "job" || snap.Root.Attrs["user"] != "alice" || snap.Root.Attrs["outcome"] != "done" {
		t.Errorf("root mismatch: %+v", snap.Root)
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("want 2 children, got %d", len(snap.Root.Children))
	}
	if snap.Root.Children[0].Name != "queue-wait" || snap.Root.Children[0].DurationUs < 500 {
		t.Errorf("queue-wait child wrong: %+v", snap.Root.Children[0])
	}
	exn := snap.Root.Children[1]
	if exn.Name != "execute" || len(exn.Children) != 1 || exn.Children[0].Attrs["strategy"] != "fast-path" {
		t.Errorf("execute subtree wrong: %+v", exn)
	}
	if snap.DurationUs <= 0 {
		t.Errorf("root duration %v", snap.DurationUs)
	}
}

func TestDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	tr := New("job")
	if tr != nil {
		t.Fatal("New should return nil when disabled")
	}
	// Everything downstream must be nil-safe.
	root := tr.Root()
	c := root.StartChild("x")
	c.SetAttr("k", "v")
	c.End()
	root.End()
	if snap := tr.Snapshot(); snap != nil {
		t.Fatal("nil trace snapshot should be nil")
	}
	ctx, sp := StartSpan(context.Background(), "y")
	if sp != nil || FromContext(ctx) != nil {
		t.Fatal("StartSpan on empty ctx should be inert")
	}
}

func TestContextThreading(t *testing.T) {
	tr := New("job")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	ctx2, sp := StartSpan(ctx, "stage", Int("n", 3))
	if sp == nil {
		t.Fatal("expected live span")
	}
	if FromContext(ctx2) == nil {
		t.Fatal("child not in ctx")
	}
	_, sub := StartSpan(ctx2, "sub")
	sub.End()
	sp.End()
	snap := tr.Snapshot()
	if len(snap.Root.Children) != 1 || snap.Root.Children[0].Attrs["n"] != "3" {
		t.Fatalf("bad tree: %+v", snap.Root)
	}
	if len(snap.Root.Children[0].Children) != 1 {
		t.Fatalf("sub span missing: %+v", snap.Root.Children[0])
	}
}

func TestSlabExhaustion(t *testing.T) {
	tr := New("job")
	root := tr.Root()
	spans := make([]*Span, 0, maxSpans*2)
	for i := 0; i < maxSpans*2; i++ {
		spans = append(spans, root.StartChild(fmt.Sprintf("s%d", i)))
	}
	for _, s := range spans {
		s.End() // nil-safe past the cap
	}
	if tr.Dropped() != maxSpans+1 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), maxSpans+1)
	}
	snap := tr.Snapshot()
	if len(snap.Root.Children) != maxSpans-1 {
		t.Errorf("children = %d, want %d", len(snap.Root.Children), maxSpans-1)
	}
	if snap.DroppedSpans == 0 {
		t.Error("snapshot should carry the dropped count")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New("job")
	s := tr.Root().StartChild("x")
	s.End()
	first := tr.Snapshot().Root.Children[0].DurationUs
	time.Sleep(2 * time.Millisecond)
	s.End(Str("late", "attr"))
	snap := tr.Snapshot().Root.Children[0]
	if snap.DurationUs != first {
		t.Errorf("second End moved duration: %v -> %v", first, snap.DurationUs)
	}
	if snap.Attrs["late"] != "attr" {
		t.Error("late attrs should still attach")
	}
}

// TestConcurrentAppendAndSnapshot hammers one trace from many goroutines
// (span starts, ends, attr writes) while snapshot readers run — the race
// detector validates the lock-free publication protocol.
func TestConcurrentAppendAndSnapshot(t *testing.T) {
	tr := New("job")
	root := tr.Root()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.StartChild("work", Int("g", g))
				s.SetAttr("i", itoa(int64(i)))
				s.End(Str("ok", "true"))
			}
		}(g)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = tr.Snapshot()
				}
			}
		}()
	}
	// Concurrent root attr stamping (the X-Request-ID path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			root.SetAttr("request_id", "req-1")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	root.End()
	snap := tr.Snapshot()
	if snap == nil || !snap.Complete {
		t.Fatalf("final snapshot incomplete: %+v", snap)
	}
	// 8 goroutines x 50 spans >> maxSpans: drops must account for the rest.
	if got := len(snap.Root.Children) + int(snap.DroppedSpans); got != 8*50 {
		t.Errorf("children+dropped = %d, want %d", got, 8*50)
	}
}

func TestAttrOverflow(t *testing.T) {
	tr := New("job")
	s := tr.Root().StartChild("x")
	for i := 0; i < maxAttrs+4; i++ {
		s.SetAttr(fmt.Sprintf("k%d", i), "v")
	}
	s.End()
	if n := len(tr.Snapshot().Root.Children[0].Attrs); n != maxAttrs {
		t.Errorf("attrs = %d, want cap %d", n, maxAttrs)
	}
}
