// Package tenant is the multi-tenant admission-control layer: per-user
// token-bucket rate limiting at the API edge, queue-depth bounds that the
// dispatch queue sheds against under overload, and the per-tenant usage
// accounting that the WFQ claim path, the /metrics plane, and the admin
// tenants endpoint all share. The package is dependency-free so every
// layer (qrm, fleet, mqss) can import it without cycles.
package tenant

import (
	"sort"
	"sync"
	"time"
)

// Admission bounds the dispatch queue. Zero values disable each bound —
// the default configuration admits everything, exactly as before.
type Admission struct {
	// MaxTenantQueue caps how many jobs one tenant may have queued at
	// once; past it the tenant's lowest-priority queued job (possibly the
	// incoming one) is shed with a retryable error.
	MaxTenantQueue int `json:"max_tenant_queue,omitempty"`
	// HighWater caps the global queue depth; past it the globally
	// lowest-priority queued job is shed regardless of tenant.
	HighWater int `json:"high_water,omitempty"`
}

// Enabled reports whether any bound is configured.
func (a Admission) Enabled() bool { return a.MaxTenantQueue > 0 || a.HighWater > 0 }

// Usage is one tenant's dispatch-queue accounting: current depth plus
// lifetime outcome counters. The fleet merges per-device rows by user;
// WAL replay rebuilds the rows when a node restarts.
type Usage struct {
	User        string `json:"user"`
	Queued      int    `json:"queued"`
	Submitted   uint64 `json:"submitted"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Cancelled   uint64 `json:"cancelled"`
	Interrupted uint64 `json:"interrupted"`
	Shed        uint64 `json:"shed"`
}

// MergeUsage sums usage rows by user across devices (fleet aggregation),
// returning one row per user sorted by user name.
func MergeUsage(rows ...[]Usage) []Usage {
	byUser := map[string]*Usage{}
	for _, set := range rows {
		for _, u := range set {
			acc, ok := byUser[u.User]
			if !ok {
				cp := u
				byUser[u.User] = &cp
				continue
			}
			acc.Queued += u.Queued
			acc.Submitted += u.Submitted
			acc.Completed += u.Completed
			acc.Failed += u.Failed
			acc.Cancelled += u.Cancelled
			acc.Interrupted += u.Interrupted
			acc.Shed += u.Shed
		}
	}
	out := make([]Usage, 0, len(byUser))
	for _, u := range byUser {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// Limiter is a per-user token-bucket rate limiter: each user accrues
// rate tokens per second up to burst, and one submission costs one token.
// A nil *Limiter admits everything — callers never branch on "limiting
// configured?".
type Limiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens    float64
	last      time.Time
	allowed   uint64
	throttled uint64
}

// NewLimiter builds a limiter at rate jobs/second with the given burst
// capacity (floored at 1). rate <= 0 returns nil: limiting disabled.
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: map[string]*bucket{},
		now:     time.Now,
	}
}

// SetClock replaces the wall clock (tests only).
func (l *Limiter) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// Rate returns the configured refill rate (0 on a nil limiter).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.rate
}

// Burst returns the configured bucket capacity (0 on a nil limiter).
func (l *Limiter) Burst() int {
	if l == nil {
		return 0
	}
	return int(l.burst)
}

// Allow spends one token for user. When the bucket is empty it refuses
// and returns how long until one token accrues — the Retry-After the API
// layer surfaces. Nil limiters always allow.
func (l *Limiter) Allow(user string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, found := l.buckets[user]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[user] = b
	}
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.allowed++
		return true, 0
	}
	b.throttled++
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// Remaining reports user's current token balance without spending any,
// refreshing the bucket first so the answer reflects accrual since the
// last Allow. Unknown users hold a full burst; nil limiters report 0.
func (l *Limiter) Remaining(user string) float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[user]
	if !found {
		return l.burst
	}
	tokens := b.tokens
	if el := l.now().Sub(b.last).Seconds(); el > 0 {
		tokens += el * l.rate
		if tokens > l.burst {
			tokens = l.burst
		}
	}
	return tokens
}

// RetryAfter reports how long until user accrues one whole token (zero
// when a token is already available). Nil-safe.
func (l *Limiter) RetryAfter(user string) time.Duration {
	if l == nil {
		return 0
	}
	tokens := l.Remaining(user)
	if tokens >= 1 {
		return 0
	}
	return time.Duration((1 - tokens) / l.rate * float64(time.Second))
}

// LimiterUsage is one user's view of the token bucket, for the admin
// endpoint and /metrics.
type LimiterUsage struct {
	User      string  `json:"user"`
	Allowed   uint64  `json:"allowed"`
	Throttled uint64  `json:"throttled"`
	Tokens    float64 `json:"tokens"`
}

// Usage snapshots every bucket, sorted by user. Nil-safe (returns nil).
func (l *Limiter) Usage() []LimiterUsage {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LimiterUsage, 0, len(l.buckets))
	for user, b := range l.buckets {
		out = append(out, LimiterUsage{
			User: user, Allowed: b.allowed, Throttled: b.throttled, Tokens: b.tokens,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}
