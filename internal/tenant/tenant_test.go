package tenant

import (
	"testing"
	"time"
)

func TestLimiterDisabled(t *testing.T) {
	if l := NewLimiter(0, 4); l != nil {
		t.Fatalf("rate 0 should disable the limiter, got %+v", l)
	}
	if l := NewLimiter(-1, 4); l != nil {
		t.Fatal("negative rate should disable the limiter")
	}
	// A nil limiter is always permissive — callers never nil-check.
	var l *Limiter
	if ok, _ := l.Allow("anyone"); !ok {
		t.Fatal("nil limiter must allow everything")
	}
	if u := l.Usage(); u != nil {
		t.Fatalf("nil limiter usage should be nil, got %v", u)
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	l := NewLimiter(10, 3) // 10 tokens/s, bucket of 3
	now := time.Unix(0, 0)
	l.SetClock(func() time.Time { return now })

	// A fresh tenant starts with a full bucket.
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst submission %d should pass", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("4th immediate submission should be throttled")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint out of range for 10/s: %v", retry)
	}

	// After the hinted wait, exactly one token is back.
	now = now.Add(retry)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("submission after the hinted wait should pass")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("bucket should be empty again immediately after")
	}

	// Refill is capped at burst: a long idle gap does not bank tokens.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("post-idle submission %d should pass", i)
		}
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("idle time must not bank more than burst tokens")
	}
}

func TestLimiterIsolatesTenants(t *testing.T) {
	l := NewLimiter(1, 1)
	now := time.Unix(0, 0)
	l.SetClock(func() time.Time { return now })

	if ok, _ := l.Allow("noisy"); !ok {
		t.Fatal("first noisy submission should pass")
	}
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("noisy"); ok {
			t.Fatal("noisy tenant should be throttled")
		}
	}
	// The noisy tenant's empty bucket must not affect the quiet one.
	if ok, _ := l.Allow("quiet"); !ok {
		t.Fatal("quiet tenant must be unaffected by the noisy one")
	}

	u := l.Usage()
	if len(u) != 2 || u[0].User != "noisy" || u[1].User != "quiet" {
		t.Fatalf("usage rows wrong: %+v", u)
	}
	if u[0].Allowed != 1 || u[0].Throttled != 5 {
		t.Fatalf("noisy counters wrong: %+v", u[0])
	}
	if u[1].Allowed != 1 || u[1].Throttled != 0 {
		t.Fatalf("quiet counters wrong: %+v", u[1])
	}
}

func TestMergeUsage(t *testing.T) {
	a := []Usage{{User: "x", Submitted: 2, Completed: 1, Queued: 1}, {User: "y", Shed: 3}}
	b := []Usage{{User: "x", Submitted: 1, Failed: 1}, {User: "z", Cancelled: 2}}
	got := MergeUsage(a, b)
	if len(got) != 3 {
		t.Fatalf("want 3 merged rows, got %+v", got)
	}
	if got[0].User != "x" || got[0].Submitted != 3 || got[0].Completed != 1 || got[0].Failed != 1 || got[0].Queued != 1 {
		t.Fatalf("x row wrong: %+v", got[0])
	}
	if got[1].User != "y" || got[1].Shed != 3 {
		t.Fatalf("y row wrong: %+v", got[1])
	}
	if got[2].User != "z" || got[2].Cancelled != 2 {
		t.Fatalf("z row wrong: %+v", got[2])
	}
}

func TestAdmissionEnabled(t *testing.T) {
	if (Admission{}).Enabled() {
		t.Fatal("zero admission config should be disabled")
	}
	if !(Admission{MaxTenantQueue: 4}).Enabled() {
		t.Fatal("per-tenant bound should enable admission")
	}
	if !(Admission{HighWater: 100}).Enabled() {
		t.Fatal("global high-water should enable admission")
	}
}
