package transpile

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Decompose lowers every gate to the native set {PRX, RZ, CZ}, preserving
// barriers. The output is a new circuit over the same register.
//
// Identities used (all up to global phase):
//
//	H        = PRX(π/2, π/2) · RZ(π)        (apply RZ first)
//	X        = PRX(π, 0)
//	Y        = PRX(π, π/2)
//	Z,S,T,…  = RZ(θ)                         (virtual, error-free)
//	RX(θ)    = PRX(θ, 0)
//	RY(θ)    = PRX(θ, π/2)
//	CNOT c,t = H(t) · CZ(c,t) · H(t)
//	SWAP a,b = CNOT(a,b) · CNOT(b,a) · CNOT(a,b)
func Decompose(c *circuit.Circuit) (*circuit.Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := circuit.New(c.NumQubits, c.Name)
	for _, g := range c.Gates {
		if err := lowerGate(out, g); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func lowerGate(out *circuit.Circuit, g circuit.Gate) error {
	emitH := func(q int) {
		out.RZ(q, math.Pi)
		out.PRX(q, math.Pi/2, math.Pi/2)
	}
	switch g.Name {
	case circuit.OpBarrier:
		return out.AddGate(g)
	case circuit.OpPRX, circuit.OpRZ, circuit.OpCZ:
		return out.AddGate(g)
	case circuit.OpH:
		emitH(g.Qubits[0])
	case circuit.OpX:
		out.PRX(g.Qubits[0], math.Pi, 0)
	case circuit.OpY:
		out.PRX(g.Qubits[0], math.Pi, math.Pi/2)
	case circuit.OpZ:
		out.RZ(g.Qubits[0], math.Pi)
	case circuit.OpS:
		out.RZ(g.Qubits[0], math.Pi/2)
	case circuit.OpSdag:
		out.RZ(g.Qubits[0], -math.Pi/2)
	case circuit.OpT:
		out.RZ(g.Qubits[0], math.Pi/4)
	case circuit.OpTdag:
		out.RZ(g.Qubits[0], -math.Pi/4)
	case circuit.OpRX:
		out.PRX(g.Qubits[0], g.Params[0], 0)
	case circuit.OpRY:
		out.PRX(g.Qubits[0], g.Params[0], math.Pi/2)
	case circuit.OpU3:
		// U3(θ, φ, λ) = RZ(φ)·RY(θ)·RZ(λ), λ applied first.
		q := g.Qubits[0]
		out.RZ(q, g.Params[2])
		out.PRX(q, g.Params[0], math.Pi/2)
		out.RZ(q, g.Params[1])
	case circuit.OpCNOT:
		c, t := g.Qubits[0], g.Qubits[1]
		emitH(t)
		out.CZ(c, t)
		emitH(t)
	case circuit.OpCRZ:
		// CRZ(θ) = [RZ(θ/2) on t] · CNOT · [RZ(-θ/2) on t] · CNOT.
		c, t := g.Qubits[0], g.Qubits[1]
		theta := g.Params[0]
		out.RZ(t, theta/2)
		emitH(t)
		out.CZ(c, t)
		emitH(t)
		out.RZ(t, -theta/2)
		emitH(t)
		out.CZ(c, t)
		emitH(t)
	case circuit.OpCCX:
		// Canonical 6-CNOT Toffoli, expressed over IR gates and lowered
		// recursively so only native gates are emitted.
		a, b2, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		sub := []circuit.Gate{
			{Name: circuit.OpH, Qubits: []int{t}},
			{Name: circuit.OpCNOT, Qubits: []int{b2, t}},
			{Name: circuit.OpTdag, Qubits: []int{t}},
			{Name: circuit.OpCNOT, Qubits: []int{a, t}},
			{Name: circuit.OpT, Qubits: []int{t}},
			{Name: circuit.OpCNOT, Qubits: []int{b2, t}},
			{Name: circuit.OpTdag, Qubits: []int{t}},
			{Name: circuit.OpCNOT, Qubits: []int{a, t}},
			{Name: circuit.OpT, Qubits: []int{b2}},
			{Name: circuit.OpT, Qubits: []int{t}},
			{Name: circuit.OpH, Qubits: []int{t}},
			{Name: circuit.OpCNOT, Qubits: []int{a, b2}},
			{Name: circuit.OpT, Qubits: []int{a}},
			{Name: circuit.OpTdag, Qubits: []int{b2}},
			{Name: circuit.OpCNOT, Qubits: []int{a, b2}},
		}
		for _, sg := range sub {
			if err := lowerGate(out, sg); err != nil {
				return err
			}
		}
	case circuit.OpSWAP:
		a, b := g.Qubits[0], g.Qubits[1]
		for _, pair := range [][2]int{{a, b}, {b, a}, {a, b}} {
			emitH(pair[1])
			out.CZ(pair[0], pair[1])
			emitH(pair[1])
		}
	default:
		return fmt.Errorf("transpile: no decomposition for gate %q", g.Name)
	}
	return nil
}
