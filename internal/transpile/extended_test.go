package transpile

import (
	"testing"

	"repro/internal/circuit"
)

func TestDecomposeU3CRZCCX(t *testing.T) {
	c := circuit.New(3, "ext")
	c.U3(0, 0.7, 0.3, -0.2).CRZ(0, 1, 1.1).CCX(0, 1, 2).U3(2, 1.5, -0.4, 0.9)
	low, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if !low.IsNative() {
		t.Fatal("extended ops not fully lowered")
	}
	eq, err := c.EquivalentTo(low, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("extended-op decomposition changed semantics")
	}
}

func TestToffoliLowersToSixCZ(t *testing.T) {
	c := circuit.New(3, "").CCX(0, 1, 2)
	low, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := low.CountOp(circuit.OpCZ); got != 6 {
		t.Errorf("Toffoli lowered to %d CZ, want 6 (canonical decomposition)", got)
	}
}

func TestTranspileToffoliOnGrid(t *testing.T) {
	tgt := gridTarget(4, 5)
	c := circuit.New(3, "tof").H(0).H(1).CCX(0, 1, 2)
	res, err := Transpile(c, tgt, Options{Placement: PlaceFidelityAware})
	if err != nil {
		t.Fatal(err)
	}
	equivalentUnderLayout(t, c, res)
}

func TestGroverTwoQubitThroughPipeline(t *testing.T) {
	// A 2-qubit Grover iteration for |11>: H⊗H, oracle CZ, diffusion.
	c := circuit.New(2, "grover")
	c.H(0).H(1)
	c.CZ(0, 1) // oracle marks |11>
	c.H(0).H(1).X(0).X(1).CZ(0, 1).X(0).X(1).H(0).H(1)
	tgt := gridTarget(2, 3)
	res, err := Transpile(c, tgt, Options{Placement: PlaceStatic})
	if err != nil {
		t.Fatal(err)
	}
	equivalentUnderLayout(t, c, res)
	// Grover on 2 qubits finds |11> with certainty.
	s, err := res.Circuit.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	phys := 0
	for _, p := range res.FinalLayout[:2] {
		phys |= 1 << uint(p)
	}
	if prob := s.Probability(phys); prob < 1-1e-9 {
		t.Errorf("Grover success probability %g, want 1", prob)
	}
}
