package transpile

import (
	"math"

	"repro/internal/circuit"
)

// angleEps below which a rotation is treated as identity.
const angleEps = 1e-12

// Optimize runs peephole passes over a native-gate circuit until a fixed
// point:
//
//   - consecutive RZ on the same qubit merge into one (dropped if ≈ 0 mod 2π);
//   - consecutive PRX with the same phase axis on the same qubit merge
//     (PRX(θ₁,φ)·PRX(θ₂,φ) = PRX(θ₁+θ₂,φ), dropped if θ ≈ 0 mod 4π... in
//     practice mod 2π up to global phase, which is what matters here);
//   - adjacent identical CZ pairs cancel (CZ² = I).
//
// "Consecutive" means no intervening gate touches the involved qubits.
// Barriers block all merging across them.
func Optimize(c *circuit.Circuit) *circuit.Circuit {
	cur := c.Clone()
	for {
		next, changed := optimizeOnce(cur)
		if !changed {
			return next
		}
		cur = next
	}
}

func optimizeOnce(c *circuit.Circuit) (*circuit.Circuit, bool) {
	out := circuit.New(c.NumQubits, c.Name)
	// lastGate[q] is the index in out.Gates of the last gate touching q,
	// or -1.
	lastGate := make([]int, c.NumQubits)
	for i := range lastGate {
		lastGate[i] = -1
	}
	deleted := map[int]bool{}
	changed := false

	touch := func(idx int, qubits []int) {
		for _, q := range qubits {
			lastGate[q] = idx
		}
	}

	for _, g := range c.Gates {
		if g.Name == circuit.OpBarrier {
			idx := len(out.Gates)
			out.Gates = append(out.Gates, g)
			if len(g.Qubits) == 0 {
				for q := range lastGate {
					lastGate[q] = idx
				}
			} else {
				touch(idx, g.Qubits)
			}
			continue
		}
		switch g.Name {
		case circuit.OpRZ:
			q := g.Qubits[0]
			if li := lastGate[q]; li >= 0 && !deleted[li] && out.Gates[li].Name == circuit.OpRZ && out.Gates[li].Qubits[0] == q {
				sum := normAngle(out.Gates[li].Params[0] + g.Params[0])
				changed = true
				if math.Abs(sum) < angleEps {
					deleted[li] = true
					lastGate[q] = -1
				} else {
					out.Gates[li].Params = []float64{sum}
				}
				continue
			}
			if math.Abs(normAngle(g.Params[0])) < angleEps {
				changed = true
				continue
			}
		case circuit.OpPRX:
			q := g.Qubits[0]
			if li := lastGate[q]; li >= 0 && !deleted[li] && out.Gates[li].Name == circuit.OpPRX && out.Gates[li].Qubits[0] == q &&
				math.Abs(normAngle(out.Gates[li].Params[1]-g.Params[1])) < angleEps {
				sum := normAngle(out.Gates[li].Params[0] + g.Params[0])
				changed = true
				if math.Abs(sum) < angleEps {
					deleted[li] = true
					lastGate[q] = -1
				} else {
					out.Gates[li].Params = []float64{sum, out.Gates[li].Params[1]}
				}
				continue
			}
			if math.Abs(normAngle(g.Params[0])) < angleEps {
				changed = true
				continue
			}
		case circuit.OpCZ:
			a, b := g.Qubits[0], g.Qubits[1]
			la, lb := lastGate[a], lastGate[b]
			if la >= 0 && la == lb && !deleted[la] && out.Gates[la].Name == circuit.OpCZ &&
				sameEdge(out.Gates[la].Qubits, g.Qubits) {
				deleted[la] = true
				lastGate[a], lastGate[b] = -1, -1
				changed = true
				continue
			}
		}
		idx := len(out.Gates)
		out.Gates = append(out.Gates, g)
		touch(idx, g.Qubits)
	}

	if len(deleted) == 0 && !changed {
		return out, false
	}
	final := circuit.New(c.NumQubits, c.Name)
	for i, g := range out.Gates {
		if deleted[i] {
			continue
		}
		final.Gates = append(final.Gates, g)
	}
	return final, true
}

func sameEdge(a, b []int) bool {
	return (a[0] == b[0] && a[1] == b[1]) || (a[0] == b[1] && a[1] == b[0])
}

// normAngle maps an angle into (-π, π].
func normAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
