package transpile

import (
	"fmt"

	"repro/internal/circuit"
)

// Options configures the full transpilation pipeline.
type Options struct {
	Placement PlacementStrategy
	Routing   RoutingStrategy
	// SkipOptimize disables the peephole pass (for ablation benchmarks).
	SkipOptimize bool
}

// Result is the output of the full pipeline.
type Result struct {
	Circuit       *circuit.Circuit // native gates over the physical register
	InitialLayout Layout
	FinalLayout   Layout
	Stats         Stats
}

// Stats summarizes what the pipeline did.
type Stats struct {
	InputGates    int
	OutputGates   int
	InputDepth    int
	OutputDepth   int
	Input2Q       int
	OutputCZ      int
	SwapsInserted int
}

func (s Stats) String() string {
	return fmt.Sprintf("transpile{gates %d→%d, depth %d→%d, 2q %d→%d cz, swaps %d}",
		s.InputGates, s.OutputGates, s.InputDepth, s.OutputDepth,
		s.Input2Q, s.OutputCZ, s.SwapsInserted)
}

// Transpile runs the full pipeline: decompose → place → route → decompose
// (lowering routing SWAPs) → optimize. The result is a native circuit over
// the physical register, executable by the device.
func Transpile(c *circuit.Circuit, t *Target, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	stats := Stats{
		InputGates: len(c.Gates),
		InputDepth: c.Depth(),
		Input2Q:    c.TwoQubitCount(),
	}

	lowered, err := Decompose(c)
	if err != nil {
		return nil, err
	}
	layout, err := Place(c.NumQubits, t, opts.Placement)
	if err != nil {
		return nil, err
	}
	routed, err := RouteWith(lowered, t, layout, opts.Routing)
	if err != nil {
		return nil, err
	}
	native, err := Decompose(routed.Circuit)
	if err != nil {
		return nil, err
	}
	final := native
	if !opts.SkipOptimize {
		final = Optimize(native)
	}
	if !final.IsNative() {
		return nil, fmt.Errorf("transpile: internal error: pipeline output is not native")
	}
	stats.OutputGates = len(final.Gates)
	stats.OutputDepth = final.Depth()
	stats.OutputCZ = final.CountOp(circuit.OpCZ)
	stats.SwapsInserted = routed.SwapsInserted
	return &Result{
		Circuit:       final,
		InitialLayout: routed.InitialLayout,
		FinalLayout:   routed.FinalLayout,
		Stats:         stats,
	}, nil
}

// ExpectedFidelity estimates the product-of-gate-fidelities success
// probability of a native circuit on the target, including readout on every
// qubit — the cost function that makes fidelity-aware placement meaningful.
func ExpectedFidelity(c *circuit.Circuit, t *Target) float64 {
	f := 1.0
	used := map[int]bool{}
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.OpPRX:
			f *= t.f1q(g.Qubits[0])
			used[g.Qubits[0]] = true
		case circuit.OpCZ:
			f *= t.fcz(g.Qubits[0], g.Qubits[1])
			used[g.Qubits[0]] = true
			used[g.Qubits[1]] = true
		}
	}
	for q := range used {
		f *= t.fread(q)
	}
	return f
}
