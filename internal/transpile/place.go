package transpile

import (
	"fmt"
)

// PlacementStrategy selects how logical qubits map to physical qubits.
type PlacementStrategy int

const (
	// PlaceStatic maps logical qubit i to physical qubit i — the layout a
	// compiler uses when it knows nothing about the device's current state.
	PlaceStatic PlacementStrategy = iota
	// PlaceFidelityAware greedily selects a connected subgraph of the
	// device with the best live fidelities (QDMI/telemetry-driven JIT
	// placement). On a drifted or TLS-hit device this dodges bad qubits.
	PlaceFidelityAware
)

func (p PlacementStrategy) String() string {
	switch p {
	case PlaceStatic:
		return "static"
	case PlaceFidelityAware:
		return "fidelity-aware"
	}
	return fmt.Sprintf("strategy(%d)", int(p))
}

// Layout maps logical qubit index -> physical qubit index.
type Layout []int

// Inverse returns the physical -> logical map (-1 for unused physicals).
func (l Layout) Inverse(numPhysical int) []int {
	inv := make([]int, numPhysical)
	for i := range inv {
		inv[i] = -1
	}
	for logical, phys := range l {
		inv[phys] = logical
	}
	return inv
}

// Place computes a layout for k logical qubits on the target.
func Place(k int, t *Target, strategy PlacementStrategy) (Layout, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > t.NumQubits {
		return nil, fmt.Errorf("transpile: cannot place %d logical qubits on %d physical", k, t.NumQubits)
	}
	switch strategy {
	case PlaceStatic:
		l := make(Layout, k)
		for i := range l {
			l[i] = i
		}
		return l, nil
	case PlaceFidelityAware:
		return placeFidelityAware(k, t)
	}
	return nil, fmt.Errorf("transpile: unknown placement strategy %d", strategy)
}

// placeFidelityAware grows a physical path from the best coupler, extending
// whichever path end has the highest-scoring free neighbour (score = 1q
// fidelity × readout fidelity × connecting coupler fidelity). Logical qubit
// i maps to the i-th path element, so consecutive logical qubits are
// physically adjacent and chain-structured circuits route without SWAPs.
func placeFidelityAware(k int, t *Target) (Layout, error) {
	if len(t.Edges) == 0 {
		if k > 1 {
			return nil, fmt.Errorf("transpile: target has no couplers, cannot place %d qubits", k)
		}
		// Single qubit: pick the best one.
		best, bestScore := 0, -1.0
		for q := 0; q < t.NumQubits; q++ {
			if s := t.f1q(q) * t.fread(q); s > bestScore {
				best, bestScore = q, s
			}
		}
		return Layout{best}, nil
	}

	qubitScore := func(q int) float64 { return t.f1q(q) * t.fread(q) }

	// Seed: the edge with the best product of coupler and endpoint scores.
	var seed [2]int
	bestScore := -1.0
	for _, e := range t.Edges {
		s := t.fcz(e[0], e[1]) * qubitScore(e[0]) * qubitScore(e[1])
		if s > bestScore {
			bestScore, seed = s, e
		}
	}

	adj := t.adjacency()
	// Grow a *path* from the seed edge, extending whichever end has the
	// best-scoring unvisited neighbour. Consecutive logical qubits then sit
	// on physically adjacent qubits, so chain-entangling circuits
	// (GHZ/VQE/QAOA) route without SWAPs — placement quality must not be
	// paid back as routing overhead. If both ends dead-end (odd region
	// shapes), fall back to growing anywhere and accept a chain break.
	path := []int{seed[0]}
	selected := map[int]bool{seed[0]: true}
	if k > 1 {
		path = append(path, seed[1])
		selected[seed[1]] = true
	}
	bestNeighbor := func(q int) (int, float64) {
		bq, bs := -1, -1.0
		for _, nb := range adj[q] {
			if selected[nb] {
				continue
			}
			if s := qubitScore(nb) * t.fcz(q, nb); s > bs || (s == bs && nb < bq) {
				bs, bq = s, nb
			}
		}
		return bq, bs
	}
	for len(path) < k {
		head, tail := path[0], path[len(path)-1]
		hq, hs := bestNeighbor(head)
		tq, ts := bestNeighbor(tail)
		switch {
		case tq >= 0 && (hq < 0 || ts >= hs):
			path = append(path, tq)
			selected[tq] = true
		case hq >= 0:
			path = append([]int{hq}, path...)
			selected[hq] = true
		default:
			// Both ends stuck: grow from any path member (deterministic
			// order), breaking the chain.
			bq, bs := -1, -1.0
			for _, q := range path {
				if nq, ns := bestNeighbor(q); nq >= 0 && (ns > bs || (ns == bs && nq < bq)) {
					bq, bs = nq, ns
				}
			}
			if bq < 0 {
				return nil, fmt.Errorf("transpile: connected region exhausted at %d of %d qubits", len(path), k)
			}
			path = append(path, bq)
			selected[bq] = true
		}
	}
	return Layout(path), nil
}
