package transpile

import (
	"fmt"

	"repro/internal/circuit"
)

// RoutingStrategy selects how SWAP paths are chosen.
type RoutingStrategy int

const (
	// RouteShortestHop inserts SWAPs along the minimal-hop BFS path.
	RouteShortestHop RoutingStrategy = iota
	// RouteFidelityWeighted inserts SWAPs along the path maximizing the
	// product of coupler fidelities — it detours around degraded couplers
	// when the detour costs less fidelity than the bad CZ would.
	RouteFidelityWeighted
)

func (r RoutingStrategy) String() string {
	if r == RouteFidelityWeighted {
		return "fidelity-weighted"
	}
	return "shortest-hop"
}

// RouteResult is the output of the routing pass.
type RouteResult struct {
	// Circuit operates on the physical register (target.NumQubits wide).
	Circuit *circuit.Circuit
	// InitialLayout and FinalLayout map logical -> physical before and
	// after routing (SWAPs permute the mapping).
	InitialLayout Layout
	FinalLayout   Layout
	SwapsInserted int
}

// Route rewrites a logical circuit onto the physical register using the
// given initial layout, inserting SWAP gates (emitted as OpSWAP, lowered by
// a subsequent Decompose pass) whenever a two-qubit gate spans non-adjacent
// physical qubits. SWAPs move the first operand along the shortest physical
// path until the pair is adjacent.
func Route(c *circuit.Circuit, t *Target, layout Layout) (*RouteResult, error) {
	return RouteWith(c, t, layout, RouteShortestHop)
}

// RouteWith is Route with an explicit path-selection strategy.
func RouteWith(c *circuit.Circuit, t *Target, layout Layout, strategy RoutingStrategy) (*RouteResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(layout) < c.NumQubits {
		return nil, fmt.Errorf("transpile: layout covers %d qubits, circuit needs %d", len(layout), c.NumQubits)
	}
	phys := make(Layout, len(layout))
	copy(phys, layout)
	inv := phys.Inverse(t.NumQubits)

	out := circuit.New(t.NumQubits, c.Name)
	swaps := 0
	for i, g := range c.Gates {
		switch len(g.Qubits) {
		case 0:
			if err := out.AddGate(g); err != nil {
				return nil, err
			}
		case 1:
			ng := g
			ng.Qubits = []int{phys[g.Qubits[0]]}
			if err := out.AddGate(ng); err != nil {
				return nil, err
			}
		case 2:
			a, b := g.Qubits[0], g.Qubits[1]
			pa, pb := phys[a], phys[b]
			if !t.Connected(pa, pb) {
				var path []int
				var err error
				if strategy == RouteFidelityWeighted {
					path, err = t.bestFidelityPath(pa, pb)
				} else {
					path, err = t.shortestPath(pa, pb)
				}
				if err != nil {
					return nil, fmt.Errorf("transpile: gate %d: %w", i, err)
				}
				// Walk pa along the path until adjacent to pb.
				for step := 0; step < len(path)-2; step++ {
					from, to := path[step], path[step+1]
					if err := out.AddGate(circuit.Gate{Name: circuit.OpSWAP, Qubits: []int{from, to}}); err != nil {
						return nil, err
					}
					swaps++
					// Update the logical<->physical maps.
					la, lb := inv[from], inv[to]
					if la >= 0 {
						phys[la] = to
					}
					if lb >= 0 {
						phys[lb] = from
					}
					inv[from], inv[to] = lb, la
				}
				pa, pb = phys[a], phys[b]
				if !t.Connected(pa, pb) {
					return nil, fmt.Errorf("transpile: gate %d: routing failed to make %d,%d adjacent", i, pa, pb)
				}
			}
			ng := g
			ng.Qubits = []int{pa, pb}
			if err := out.AddGate(ng); err != nil {
				return nil, err
			}
		default:
			// Barrier over named qubits: remap each.
			ng := g
			ng.Qubits = make([]int, len(g.Qubits))
			for j, q := range g.Qubits {
				ng.Qubits[j] = phys[q]
			}
			if err := out.AddGate(ng); err != nil {
				return nil, err
			}
		}
	}
	return &RouteResult{
		Circuit:       out,
		InitialLayout: layout,
		FinalLayout:   phys,
		SwapsInserted: swaps,
	}, nil
}
