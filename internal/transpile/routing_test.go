package transpile

import (
	"testing"

	"repro/internal/circuit"
)

// degradedCouplerTarget: a 1x5 line plus a 2-row grid detour, with the
// direct coupler between 1 and 2 badly degraded.
func degradedCouplerTarget() *Target {
	// Layout:
	//   0 - 1 - 2 - 3 - 4
	//       |   |
	//       5 - 6
	t := &Target{
		NumQubits: 7,
		Edges: [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4},
			{1, 5}, {5, 6}, {2, 6},
		},
	}
	t.F1Q = make([]float64, 7)
	t.FRead = make([]float64, 7)
	t.FCZ = map[[2]int]float64{}
	for i := range t.F1Q {
		t.F1Q[i] = 0.999
		t.FRead[i] = 0.99
	}
	for _, e := range t.Edges {
		t.FCZ[e] = 0.99
	}
	t.FCZ[[2]int{1, 2}] = 0.6 // TLS sitting on the direct coupler
	return t
}

func TestFidelityPathAvoidsDegradedCoupler(t *testing.T) {
	tgt := degradedCouplerTarget()
	// Shortest-hop path 0->3 goes 0-1-2-3 through the bad coupler.
	hop, err := tgt.shortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hop) != 4 {
		t.Fatalf("hop path %v, want length 4", hop)
	}
	// The fidelity-weighted path detours 0-1-5-6-2-3.
	fid, err := tgt.bestFidelityPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fid) != 6 {
		t.Fatalf("fidelity path %v, want the 6-node detour", fid)
	}
	usesBadEdge := false
	for i := 1; i < len(fid); i++ {
		if (fid[i-1] == 1 && fid[i] == 2) || (fid[i-1] == 2 && fid[i] == 1) {
			usesBadEdge = true
		}
	}
	if usesBadEdge {
		t.Errorf("fidelity path %v crosses the degraded coupler", fid)
	}
}

func TestFidelityPathDegeneratesToShortestOnUniform(t *testing.T) {
	tgt := gridTarget(3, 3)
	hop, err := tgt.shortestPath(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := tgt.bestFidelityPath(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fid) != len(hop) {
		t.Errorf("uniform-fidelity path length %d, want hop length %d", len(fid), len(hop))
	}
}

func TestFidelityPathErrors(t *testing.T) {
	tgt := &Target{NumQubits: 4, Edges: [][2]int{{0, 1}, {2, 3}}}
	if _, err := tgt.bestFidelityPath(0, 3); err == nil {
		t.Error("disconnected components should fail")
	}
	p, err := tgt.bestFidelityPath(2, 2)
	if err != nil || len(p) != 1 {
		t.Errorf("self path = %v, %v", p, err)
	}
}

func TestRoutingStrategyAblation(t *testing.T) {
	tgt := degradedCouplerTarget()
	// A CZ between logical 0 and 1 placed at physical 0 and 3: routing must
	// bring them together.
	c := circuit.New(2, "").H(0).CNOT(0, 1)
	for _, strat := range []RoutingStrategy{RouteShortestHop, RouteFidelityWeighted} {
		res, err := Transpile(c, tgt, Options{Placement: PlaceStatic, Routing: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		equivalentUnderLayout(t, c, res)
	}
	// With logical qubits far apart, the fidelity-weighted route should
	// produce an equal-or-better expected fidelity despite more swaps.
	far := circuit.New(4, "far")
	far.H(0).CNOT(0, 3) // static layout: physical 0 and 3
	hop, err := Transpile(far, tgt, Options{Placement: PlaceStatic, Routing: RouteShortestHop})
	if err != nil {
		t.Fatal(err)
	}
	fid, err := Transpile(far, tgt, Options{Placement: PlaceStatic, Routing: RouteFidelityWeighted})
	if err != nil {
		t.Fatal(err)
	}
	equivalentUnderLayout(t, far, hop)
	equivalentUnderLayout(t, far, fid)
	fHop := ExpectedFidelity(hop.Circuit, tgt)
	fFid := ExpectedFidelity(fid.Circuit, tgt)
	if fFid <= fHop {
		t.Errorf("fidelity-weighted routing %.4f should beat shortest-hop %.4f through a 0.6 coupler",
			fFid, fHop)
	}
}

func TestRoutingStrategyStrings(t *testing.T) {
	if RouteShortestHop.String() != "shortest-hop" || RouteFidelityWeighted.String() != "fidelity-weighted" {
		t.Error("routing strategy names wrong")
	}
}
