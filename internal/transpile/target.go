// Package transpile lowers frontend circuits to the QPU's native gate set
// {PRX, RZ, CZ}, places logical qubits onto physical qubits, routes
// two-qubit gates through the coupling graph with SWAP insertion, and runs
// peephole optimization. The placement pass can consume live calibration
// data, implementing the telemetry-aware just-in-time transpilation the
// paper highlights (§2.6, §3.1: "just-in-time quantum circuit transpilation
// can reduce noise", citing Wilson et al.).
package transpile

import (
	"fmt"
	"math"
	"sort"
)

// Target describes the hardware a circuit is compiled for: connectivity and
// (optionally) live per-qubit and per-coupler fidelities delivered through
// the QDMI interface.
type Target struct {
	NumQubits int
	Edges     [][2]int
	// Live fidelities. May be nil, in which case placement treats the
	// device as uniform.
	F1Q   []float64
	FRead []float64
	FCZ   map[[2]int]float64

	adj map[int][]int
}

// Validate checks the target's internal consistency.
func (t *Target) Validate() error {
	if t.NumQubits < 1 {
		return fmt.Errorf("transpile: target has %d qubits", t.NumQubits)
	}
	for _, e := range t.Edges {
		if e[0] < 0 || e[0] >= t.NumQubits || e[1] < 0 || e[1] >= t.NumQubits || e[0] == e[1] {
			return fmt.Errorf("transpile: bad edge %v", e)
		}
	}
	if t.F1Q != nil && len(t.F1Q) != t.NumQubits {
		return fmt.Errorf("transpile: F1Q has %d entries for %d qubits", len(t.F1Q), t.NumQubits)
	}
	if t.FRead != nil && len(t.FRead) != t.NumQubits {
		return fmt.Errorf("transpile: FRead has %d entries for %d qubits", len(t.FRead), t.NumQubits)
	}
	return nil
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Connected reports whether physical qubits a and b share a coupler.
func (t *Target) Connected(a, b int) bool {
	for _, e := range t.Edges {
		if e == edgeKey(a, b) {
			return true
		}
	}
	return false
}

// adjacency builds (once) and returns the adjacency map.
func (t *Target) adjacency() map[int][]int {
	if t.adj != nil {
		return t.adj
	}
	adj := make(map[int][]int, t.NumQubits)
	for _, e := range t.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for q := range adj {
		sort.Ints(adj[q])
	}
	t.adj = adj
	return adj
}

// shortestPath returns a minimal-hop path from a to b over the target.
func (t *Target) shortestPath(a, b int) ([]int, error) {
	if a == b {
		return []int{a}, nil
	}
	adj := t.adjacency()
	prev := map[int]int{a: a}
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == b {
				path := []int{b}
				for p := cur; ; p = prev[p] {
					path = append(path, p)
					if p == a {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("transpile: physical qubits %d and %d not connected", a, b)
}

// f1q returns the single-qubit fidelity of physical qubit q (1 if unknown).
func (t *Target) f1q(q int) float64 {
	if t.F1Q == nil {
		return 1
	}
	return t.F1Q[q]
}

// fread returns the readout fidelity of q (1 if unknown).
func (t *Target) fread(q int) float64 {
	if t.FRead == nil {
		return 1
	}
	return t.FRead[q]
}

// bestFidelityPath returns the qubit path from a to b minimizing the
// fidelity cost of SWAP-routing along it: each hop is a SWAP, which costs
// three CZs on that coupler plus twelve single-qubit gates on its endpoints,
// so the Dijkstra edge weight is 3·(-log fcz) + 6·(-log f1q) per endpoint.
// With uniform fidelities this degenerates to a shortest-hop path; when a
// coupler is badly degraded (a TLS parked on it), the router detours —
// three CZs through a 0.6 coupler cost more fidelity than six through 0.99
// ones.
func (t *Target) bestFidelityPath(a, b int) ([]int, error) {
	if a == b {
		return []int{a}, nil
	}
	adj := t.adjacency()
	const inf = 1e300
	dist := make(map[int]float64, t.NumQubits)
	prev := make(map[int]int, t.NumQubits)
	visited := make(map[int]bool, t.NumQubits)
	dist[a] = 0
	for {
		// Extract the unvisited node with the smallest distance. Linear
		// scan is fine at 20-qubit scale.
		cur, best := -1, inf
		for q, d := range dist {
			if !visited[q] && d < best {
				cur, best = q, d
			}
		}
		if cur == -1 {
			return nil, fmt.Errorf("transpile: physical qubits %d and %d not connected", a, b)
		}
		if cur == b {
			break
		}
		visited[cur] = true
		for _, nb := range adj[cur] {
			f := t.fcz(cur, nb)
			if f <= 0 {
				continue
			}
			w := -3*logFid(f) - 6*logFid(t.f1q(cur)) - 6*logFid(t.f1q(nb))
			if nd := dist[cur] + w; nd < distOr(dist, nb, inf) {
				dist[nb] = nd
				prev[nb] = cur
			}
		}
	}
	path := []int{b}
	for p := b; p != a; {
		p = prev[p]
		path = append(path, p)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

func distOr(m map[int]float64, k int, def float64) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return def
}

// logFid guards log of near-zero fidelities.
func logFid(f float64) float64 {
	if f < 1e-12 {
		f = 1e-12
	}
	return math.Log(f)
}

// fcz returns the CZ fidelity of the coupler (a,b); 1 if unknown, 0 if the
// pair is not an edge.
func (t *Target) fcz(a, b int) float64 {
	if !t.Connected(a, b) {
		return 0
	}
	if t.FCZ == nil {
		return 1
	}
	if f, ok := t.FCZ[edgeKey(a, b)]; ok {
		return f
	}
	return 1
}
