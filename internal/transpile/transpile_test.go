package transpile

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// gridTarget returns a rows x cols grid target with uniform fidelities.
func gridTarget(rows, cols int) *Target {
	var edges [][2]int
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{idx(r, c), idx(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{idx(r, c), idx(r+1, c)})
			}
		}
	}
	return &Target{NumQubits: rows * cols, Edges: edges}
}

// lineTarget returns an n-qubit path graph.
func lineTarget(n int) *Target {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return &Target{NumQubits: n, Edges: edges}
}

// equivalentUnderLayout verifies that the transpiled physical circuit acts on
// |0…0> exactly as the logical circuit does, with logical qubit i living on
// physical qubit res.FinalLayout[i], up to global phase.
func equivalentUnderLayout(t *testing.T, orig *circuit.Circuit, res *Result) {
	t.Helper()
	so, err := orig.Simulate()
	if err != nil {
		t.Fatalf("simulating original: %v", err)
	}
	st, err := res.Circuit.Simulate()
	if err != nil {
		t.Fatalf("simulating transpiled: %v", err)
	}
	var ip complex128
	for l := 0; l < so.Dim(); l++ {
		p := 0
		for bit := 0; bit < orig.NumQubits; bit++ {
			if l&(1<<uint(bit)) != 0 {
				p |= 1 << uint(res.FinalLayout[bit])
			}
		}
		ip += cmplx.Conj(so.Amplitude(l)) * st.Amplitude(p)
	}
	if f := real(ip)*real(ip) + imag(ip)*imag(ip); f < 1-1e-9 {
		t.Errorf("transpiled circuit not equivalent under layout: fidelity %g", f)
	}
}

func TestDecomposeProducesNative(t *testing.T) {
	c := circuit.New(3, "mix")
	c.H(0).X(1).Y(2).Z(0).S(1).Sdag(2).T(0).Tdag(1)
	c.RX(0, 0.4).RY(1, 0.8).RZ(2, 1.2).PRX(0, 0.1, 0.2)
	c.CNOT(0, 1).SWAP(1, 2).CZ(0, 2).Barrier()
	low, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if !low.IsNative() {
		t.Fatal("decomposed circuit contains non-native gates")
	}
	eq, err := c.EquivalentTo(low, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("decomposition changed circuit semantics")
	}
}

func TestDecomposeRandomCircuitsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []string{circuit.OpH, circuit.OpX, circuit.OpY, circuit.OpZ, circuit.OpS,
		circuit.OpT, circuit.OpRX, circuit.OpRY, circuit.OpRZ, circuit.OpCNOT,
		circuit.OpSWAP, circuit.OpCZ}
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		c := circuit.New(n, "rand")
		for i := 0; i < 12; i++ {
			op := ops[rng.Intn(len(ops))]
			g := circuit.Gate{Name: op}
			switch op {
			case circuit.OpCNOT, circuit.OpSWAP, circuit.OpCZ:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				g.Qubits = []int{a, b}
			case circuit.OpRX, circuit.OpRY, circuit.OpRZ:
				g.Qubits = []int{rng.Intn(n)}
				g.Params = []float64{rng.Float64()*4*math.Pi - 2*math.Pi}
			default:
				g.Qubits = []int{rng.Intn(n)}
			}
			if err := c.AddGate(g); err != nil {
				t.Fatal(err)
			}
		}
		low, err := Decompose(c)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := c.EquivalentTo(low, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: decomposition not equivalent:\n%s", trial, c.ToQASM())
		}
	}
}

func TestOptimizeMergesRotations(t *testing.T) {
	c := circuit.New(2, "")
	c.RZ(0, 0.5).RZ(0, 0.7).PRX(1, 0.3, 0.1).PRX(1, 0.4, 0.1)
	opt := Optimize(c)
	if got := len(opt.Gates); got != 2 {
		t.Errorf("gates after merge = %d, want 2: %v", got, opt.Gates)
	}
	eq, err := c.EquivalentTo(opt, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("merge changed semantics")
	}
}

func TestOptimizeCancelsInverses(t *testing.T) {
	c := circuit.New(2, "")
	c.RZ(0, 1.3).RZ(0, -1.3).CZ(0, 1).CZ(1, 0).PRX(1, 0.9, 0.4).PRX(1, -0.9, 0.4)
	opt := Optimize(c)
	if got := len(opt.Gates); got != 0 {
		t.Errorf("all gates should cancel, got %d: %v", got, opt.Gates)
	}
}

func TestOptimizeRespectsInterveningGates(t *testing.T) {
	c := circuit.New(2, "")
	c.RZ(0, 0.5).CZ(0, 1).RZ(0, 0.5) // CZ touches qubit 0: no merge
	opt := Optimize(c)
	if got := len(opt.Gates); got != 3 {
		t.Errorf("gates = %d, want 3 (no merge across CZ)", got)
	}
}

func TestOptimizeRespectsBarriers(t *testing.T) {
	c := circuit.New(1, "")
	c.RZ(0, 0.5).Barrier().RZ(0, -0.5)
	opt := Optimize(c)
	// The barrier must prevent cancellation.
	if got := opt.CountOp(circuit.OpRZ); got != 2 {
		t.Errorf("rz count = %d, want 2 (barrier blocks merge)", got)
	}
}

func TestOptimizeDropsZeroRotations(t *testing.T) {
	c := circuit.New(1, "")
	c.RZ(0, 0).PRX(0, 2*math.Pi, 0.3).RZ(0, 2*math.Pi)
	opt := Optimize(c)
	if got := len(opt.Gates); got != 0 {
		t.Errorf("zero rotations survived: %v", opt.Gates)
	}
}

func TestPlaceStatic(t *testing.T) {
	tgt := gridTarget(4, 5)
	l, err := Place(5, tgt, PlaceStatic)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range l {
		if p != i {
			t.Errorf("static layout[%d] = %d", i, p)
		}
	}
}

func TestPlaceValidation(t *testing.T) {
	tgt := gridTarget(2, 2)
	if _, err := Place(0, tgt, PlaceStatic); err == nil {
		t.Error("expected error for 0 qubits")
	}
	if _, err := Place(5, tgt, PlaceStatic); err == nil {
		t.Error("expected error for too many qubits")
	}
	if _, err := Place(2, tgt, PlacementStrategy(99)); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestPlaceFidelityAwareAvoidsBadQubits(t *testing.T) {
	tgt := gridTarget(4, 5)
	tgt.F1Q = make([]float64, 20)
	tgt.FRead = make([]float64, 20)
	tgt.FCZ = map[[2]int]float64{}
	for i := range tgt.F1Q {
		tgt.F1Q[i] = 0.999
		tgt.FRead[i] = 0.98
	}
	for _, e := range tgt.Edges {
		tgt.FCZ[e] = 0.99
	}
	// Poison qubits 0 and 1 (a TLS hit near the static layout's home).
	tgt.F1Q[0] = 0.90
	tgt.F1Q[1] = 0.91
	l, err := Place(4, tgt, PlaceFidelityAware)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range l {
		if p == 0 || p == 1 {
			t.Errorf("fidelity-aware layout %v uses poisoned qubit %d", l, p)
		}
	}
	// The layout must be connected and duplicate-free.
	seen := map[int]bool{}
	for _, p := range l {
		if seen[p] {
			t.Fatalf("layout %v has duplicates", l)
		}
		seen[p] = true
	}
}

func TestPlaceFidelityAwareUniformIsConnected(t *testing.T) {
	tgt := gridTarget(4, 5)
	l, err := Place(20, tgt, PlaceFidelityAware)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 20 {
		t.Fatalf("layout size %d", len(l))
	}
	seen := map[int]bool{}
	for _, p := range l {
		if seen[p] {
			t.Fatal("duplicate physical qubit in layout")
		}
		seen[p] = true
	}
}

func TestRouteAdjacentGateNeedsNoSwaps(t *testing.T) {
	tgt := lineTarget(3)
	c := circuit.New(2, "").CZ(0, 1)
	res, err := Route(c, tgt, Layout{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 0 {
		t.Errorf("swaps = %d, want 0", res.SwapsInserted)
	}
}

func TestRouteInsertsSwapsForDistantPair(t *testing.T) {
	tgt := lineTarget(5)
	c := circuit.New(2, "").H(0).CNOT(0, 1)
	// Place logical 0 at physical 0 and logical 1 at physical 4.
	low, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(low, tgt, Layout{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 3 {
		t.Errorf("swaps = %d, want 3 (distance 4 needs 3 swaps)", res.SwapsInserted)
	}
	// Lower the swaps and verify semantics under the final layout.
	native, err := Decompose(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	full := &Result{Circuit: native, FinalLayout: res.FinalLayout}
	equivalentUnderLayout(t, c, full)
}

func TestTranspileGHZ20OnGrid(t *testing.T) {
	tgt := gridTarget(4, 5)
	res, err := Transpile(circuit.GHZ(20), tgt, Options{Placement: PlaceStatic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Circuit.IsNative() {
		t.Fatal("output not native")
	}
	// GHZ chain 0-1-...-19 on a 4x5 grid in row-major order: neighbours
	// i,i+1 are adjacent except at row boundaries (4-5, 9-10, 14-15).
	if res.Stats.SwapsInserted == 0 {
		t.Error("expected swaps at grid row boundaries")
	}
	equivalentUnderLayout(t, circuit.GHZ(20), res)
}

func TestTranspileSmallCircuitsEquivalent(t *testing.T) {
	tgt := gridTarget(2, 3)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		c := circuit.New(n, "t")
		for i := 0; i < 10; i++ {
			switch rng.Intn(3) {
			case 0:
				c.RY(rng.Intn(n), rng.Float64()*3)
			case 1:
				c.H(rng.Intn(n))
			case 2:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CNOT(a, b)
			}
		}
		for _, strat := range []PlacementStrategy{PlaceStatic, PlaceFidelityAware} {
			res, err := Transpile(c, tgt, Options{Placement: strat})
			if err != nil {
				t.Fatalf("trial %d strategy %v: %v", trial, strat, err)
			}
			equivalentUnderLayout(t, c, res)
		}
	}
}

func TestTranspileOptimizeReducesGateCount(t *testing.T) {
	tgt := gridTarget(4, 5)
	// A circuit a naive frontend might emit, with obvious redundancy.
	c := circuit.New(4, "redundant")
	c.X(0).X(0).T(1).Tdag(1).CZ(1, 2).CZ(2, 1).S(3).S(3).Sdag(3).Sdag(3)
	c.H(0).CNOT(0, 1)
	with, err := Transpile(c, tgt, Options{Placement: PlaceStatic})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Transpile(c, tgt, Options{Placement: PlaceStatic, SkipOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats.OutputGates >= without.Stats.OutputGates {
		t.Errorf("optimize did not reduce gates: %d vs %d",
			with.Stats.OutputGates, without.Stats.OutputGates)
	}
	equivalentUnderLayout(t, c, with)
}

func TestExpectedFidelityPrefersGoodLayout(t *testing.T) {
	tgt := gridTarget(4, 5)
	tgt.F1Q = make([]float64, 20)
	tgt.FRead = make([]float64, 20)
	tgt.FCZ = map[[2]int]float64{}
	for i := range tgt.F1Q {
		tgt.F1Q[i] = 0.999
		tgt.FRead[i] = 0.98
	}
	for _, e := range tgt.Edges {
		tgt.FCZ[e] = 0.99
	}
	tgt.F1Q[0] = 0.85 // badly degraded qubit at the static layout's origin
	tgt.FCZ[[2]int{0, 1}] = 0.9
	ghz := circuit.GHZ(5)
	static, err := Transpile(ghz, tgt, Options{Placement: PlaceStatic})
	if err != nil {
		t.Fatal(err)
	}
	jit, err := Transpile(ghz, tgt, Options{Placement: PlaceFidelityAware})
	if err != nil {
		t.Fatal(err)
	}
	fs := ExpectedFidelity(static.Circuit, tgt)
	fj := ExpectedFidelity(jit.Circuit, tgt)
	if fj <= fs {
		t.Errorf("JIT placement expected fidelity %.4f should beat static %.4f", fj, fs)
	}
}

func TestTargetValidate(t *testing.T) {
	bad := &Target{NumQubits: 0}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for empty target")
	}
	bad2 := &Target{NumQubits: 2, Edges: [][2]int{{0, 5}}}
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for bad edge")
	}
	bad3 := &Target{NumQubits: 2, F1Q: []float64{1}}
	if err := bad3.Validate(); err == nil {
		t.Error("expected error for short F1Q")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{InputGates: 5, OutputGates: 10, SwapsInserted: 2}
	if s.String() == "" {
		t.Error("empty stats string")
	}
	if PlaceStatic.String() != "static" || PlaceFidelityAware.String() != "fidelity-aware" {
		t.Error("strategy names wrong")
	}
}

// Randomized-input equivalence: decompose must commute with arbitrary input
// states, not just |0…0>. Prepare a random product state, run both circuits.
func TestDecomposeEquivalentOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := circuit.New(3, "")
	c.H(0).CNOT(0, 1).T(1).CNOT(1, 2).S(2).CNOT(0, 2)
	low, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		s1 := quantum.MustNewState(3)
		for q := 0; q < 3; q++ {
			s1.Apply1Q(q, quantum.PRX(rng.Float64()*math.Pi, rng.Float64()*2*math.Pi))
		}
		s2 := s1.Clone()
		if err := c.ApplyTo(s1); err != nil {
			t.Fatal(err)
		}
		if err := low.ApplyTo(s2); err != nil {
			t.Fatal(err)
		}
		f, err := s1.Fidelity(s2)
		if err != nil {
			t.Fatal(err)
		}
		if f < 1-1e-9 {
			t.Fatalf("trial %d: decomposition differs on random input, fidelity %g", trial, f)
		}
	}
}
